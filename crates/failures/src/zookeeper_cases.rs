//! The four ZooKeeper failures (f1–f4).

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, Value};
use anduril_sim::{NodeSpec, SimConfig, Topology};
use anduril_targets::zookeeper::{self, names};

use crate::case::{DeeperCause, FailureCase};

fn scenario(name: &str, wl: Option<(&str, i64)>, max_time: u64) -> Scenario {
    let program = zookeeper::build();
    let server = program.func_named(names::SERVER_MAIN).expect("server main");
    let mut nodes = vec![
        NodeSpec::new(
            "zk1",
            server,
            vec![Value::Bool(true), Value::Int(0), Value::Int(1_200)],
        ),
        NodeSpec::new(
            "zk2",
            server,
            vec![Value::Bool(false), Value::Int(100), Value::Int(600)],
        ),
        NodeSpec::new(
            "zk3",
            server,
            vec![Value::Bool(false), Value::Int(700), Value::Int(600)],
        ),
    ];
    if let Some((wl, arg)) = wl {
        nodes.push(NodeSpec::new(
            "client",
            program.func_named(wl).expect("workload"),
            vec![Value::Int(arg)],
        ));
    }
    Scenario {
        name: name.to_string(),
        program,
        topology: Topology::new(nodes),
        config: SimConfig {
            max_time,
            ..SimConfig::default()
        },
    }
}

/// f1 — ZK-2247: server unavailable when the leader fails to write its
/// transaction log.
pub fn f1() -> FailureCase {
    FailureCase {
        id: "f1",
        ticket: "ZK-2247",
        system: "ZooKeeper",
        description: "Server unavailable when leader fails to write transaction log",
        scenario: scenario("ZK-2247", Some((names::WL_F1, 12)), 18_000),
        oracle: Oracle::And(vec![
            Oracle::NodeAborted("zk1".into()),
            Oracle::LogContains("unable to write transaction log".into()),
            Oracle::LogContains("Giving up on server connection".into()),
            // Timing pin: three transactions committed before the fault.
            Oracle::GlobalEquals {
                node: "zk1".into(),
                global: "txnCount".into(),
                value: Value::Int(3),
            },
        ]),
        root_site_desc: names::SITE_F1,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f2 — ZK-3157: a connection loss makes the client fail.
pub fn f2() -> FailureCase {
    FailureCase {
        id: "f2",
        ticket: "ZK-3157",
        system: "ZooKeeper",
        description: "Connection loss causes the client to fail",
        scenario: scenario("ZK-3157", Some((names::WL_F2, 12)), 18_000),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Uncaught exception IllegalStateException".into()),
            Oracle::LogContains("closing session".into()),
            Oracle::ThreadDied("main".into()),
        ]),
        root_site_desc: names::SITE_F2,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f3 — ZK-4203: the leader election listener exits forever on a socket
/// error.
pub fn f3() -> FailureCase {
    FailureCase {
        id: "f3",
        ticket: "ZK-4203",
        system: "ZooKeeper",
        description: "The leader election is stuck forever due to connection error",
        scenario: scenario("ZK-4203", None, 18_000),
        oracle: Oracle::And(vec![
            Oracle::LogContains("shutting down listener thread".into()),
            Oracle::LogContains("no response from leader".into()),
        ]),
        root_site_desc: names::SITE_F3,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f4 — ZK-3006: invalid disk content leads to an NPE; the deeper-cause
/// variant (ZK-4737 analog) shows the snapshot-header read can produce the
/// same symptom as the developer-blamed network sync.
pub fn f4() -> FailureCase {
    FailureCase {
        id: "f4",
        ticket: "ZK-3006",
        system: "ZooKeeper",
        description: "Invalid disk file content causes null pointer exception",
        scenario: scenario("ZK-3006", Some((names::WL_F4, 8)), 18_000),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Uncaught exception RuntimeException".into()),
            Oracle::LogContains("Giving up on server connection".into()),
        ]),
        root_site_desc: names::SITE_F4,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![DeeperCause {
            site_desc: names::SITE_F4_DEEPER,
            exc: ExceptionType::Io,
            note: "ZK-4737 analog: a disk fault reading the snapshot header \
                   (not the blamed network sync) leaves the database \
                   uninitialized and produces the same NPE symptom",
        }],
    }
}

/// All ZooKeeper cases.
pub fn cases() -> Vec<FailureCase> {
    vec![f1(), f2(), f3(), f4()]
}
