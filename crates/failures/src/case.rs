//! The failure-case model: scenario + oracle + ground truth.

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, SiteId};
use anduril_sim::InjectionPlan;

/// The known root cause of a failure, resolved to a concrete dynamic
/// instance under the failure seed.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Root-cause fault site.
    pub site: SiteId,
    /// Dynamic occurrence to inject at.
    pub occurrence: u32,
    /// Exception type to inject.
    pub exc: ExceptionType,
    /// Seed of the "production" run.
    pub seed: u64,
}

/// An additional, deeper root cause that also satisfies the oracle
/// (Table 6's "new root cause" discoveries).
#[derive(Debug, Clone)]
pub struct DeeperCause {
    /// Description of the alternative root-cause site.
    pub site_desc: &'static str,
    /// Exception type to inject there.
    pub exc: ExceptionType,
    /// The analog ticket from the paper's Table 6 and what it teaches.
    pub note: &'static str,
}

/// One of the 22 evaluated failures.
#[derive(Debug, Clone)]
pub struct FailureCase {
    /// Paper id, `f1`..`f22`.
    pub id: &'static str,
    /// Ticket name, e.g. `HB-25905`.
    pub ticket: &'static str,
    /// Target system name.
    pub system: &'static str,
    /// One-line description (Table 5).
    pub description: &'static str,
    /// Target + workload.
    pub scenario: Scenario,
    /// The failure oracle.
    pub oracle: Oracle,
    /// Description string of the root-cause site in the target program.
    pub root_site_desc: &'static str,
    /// Exception the root cause throws (Table 5's "Injected Fault").
    pub root_exc: ExceptionType,
    /// Seed of the production failure run.
    pub failure_seed: u64,
    /// Alternative deeper causes (empty for most cases).
    pub deeper_causes: Vec<DeeperCause>,
}

/// Errors from ground-truth resolution.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The named root site does not exist in the program.
    NoSuchSite(String),
    /// No occurrence of the root site satisfies the oracle.
    NotReproducible(String),
    /// The simulator failed.
    Sim(String),
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseError::NoSuchSite(s) => write!(f, "no such site: {s}"),
            CaseError::NotReproducible(s) => write!(f, "not reproducible: {s}"),
            CaseError::Sim(s) => write!(f, "simulation error: {s}"),
        }
    }
}

impl std::error::Error for CaseError {}

impl FailureCase {
    /// Resolves the root-cause site id from its description.
    pub fn root_site(&self) -> Result<SiteId, CaseError> {
        self.scenario
            .program
            .sites
            .iter()
            .find(|s| s.desc == self.root_site_desc)
            .map(|s| s.id)
            .ok_or_else(|| CaseError::NoSuchSite(self.root_site_desc.to_string()))
    }

    /// Resolves the ground truth: scans the root site's dynamic occurrences
    /// under the failure seed for one that satisfies the oracle.
    ///
    /// This mirrors the paper's setup: the tickets are resolved, so the
    /// root-cause *site* is known, and the failure log is obtained "by
    /// manually reproducing the failure first based on the ground truth".
    pub fn ground_truth(&self) -> Result<GroundTruth, CaseError> {
        let site = self.root_site()?;
        let normal = self
            .scenario
            .run(self.failure_seed, InjectionPlan::none())
            .map_err(|e| CaseError::Sim(e.to_string()))?;
        let total = normal.site_occurrences[site.index()];
        for occurrence in 0..total.max(1) {
            let r = self
                .scenario
                .run(
                    self.failure_seed,
                    InjectionPlan::exact(site, occurrence, self.root_exc),
                )
                .map_err(|e| CaseError::Sim(e.to_string()))?;
            if r.injected.is_some() && self.oracle.check(&r) {
                return Ok(GroundTruth {
                    site,
                    occurrence,
                    exc: self.root_exc,
                    seed: self.failure_seed,
                });
            }
        }
        Err(CaseError::NotReproducible(format!(
            "{}: no occurrence of {} (of {total}) satisfies the oracle",
            self.id, self.root_site_desc
        )))
    }

    /// Renders the "production" failure log for this case.
    pub fn failure_log(&self) -> Result<String, CaseError> {
        let gt = self.ground_truth()?;
        let r = self
            .scenario
            .run(
                gt.seed,
                InjectionPlan::exact(gt.site, gt.occurrence, gt.exc),
            )
            .map_err(|e| CaseError::Sim(e.to_string()))?;
        Ok(r.log_text())
    }

    /// Checks that the workload alone (no injection) does **not** satisfy
    /// the oracle — the defining property of a fault-induced failure.
    pub fn fault_free_run_is_healthy(&self) -> Result<bool, CaseError> {
        let r = self
            .scenario
            .run(self.failure_seed, InjectionPlan::none())
            .map_err(|e| CaseError::Sim(e.to_string()))?;
        Ok(!self.oracle.check(&r))
    }
}
