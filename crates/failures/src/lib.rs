//! The 22 real-world failure scenarios (f1–f22) the paper evaluates on,
//! recreated on the mini target systems.
//!
//! Each [`FailureCase`] carries a [`anduril_core::Scenario`] (system +
//! workload), a failure [`anduril_core::Oracle`], and the known root cause.
//! The "production" failure log is produced by replaying the ground truth
//! — mirroring the paper's setup for tickets that ship without a log file.

#![warn(missing_docs)]

pub mod case;
pub mod cassandra_cases;
pub mod hbase_cases;
pub mod hdfs_cases;
pub mod kafka_cases;
pub mod zookeeper_cases;

pub use case::{CaseError, DeeperCause, FailureCase, GroundTruth};

/// Every implemented failure case, in paper order.
pub fn all_cases() -> Vec<FailureCase> {
    let mut v = Vec::new();
    v.extend(zookeeper_cases::cases());
    v.extend(hdfs_cases::cases());
    v.extend(hbase_cases::cases());
    v.extend(kafka_cases::cases());
    v.extend(cassandra_cases::cases());
    v.sort_by_key(|c| c.id[1..].parse::<u32>().expect("case ids are fN"));
    v
}

/// Looks up a case by its paper id (`"f17"`) or ticket (`"HB-25905"`).
pub fn case_by_id(id: &str) -> Option<FailureCase> {
    all_cases()
        .into_iter()
        .find(|c| c.id == id || c.ticket.eq_ignore_ascii_case(id))
}
