//! The 22 real-world failure scenarios (f1–f22) the paper evaluates on,
//! recreated on the mini target systems.
//!
//! Each [`FailureCase`] carries a [`anduril_core::Scenario`] (system +
//! workload), a failure [`anduril_core::Oracle`], and the known root cause.
//! The "production" failure log is produced by replaying the ground truth
//! — mirroring the paper's setup for tickets that ship without a log file.

#![warn(missing_docs)]

pub mod case;
pub mod cassandra_cases;
pub mod hbase_cases;
pub mod hdfs_cases;
pub mod kafka_cases;
pub mod zookeeper_cases;

pub use case::{CaseError, DeeperCause, FailureCase, GroundTruth};

/// Sort key giving a total, panic-free order over case ids: the paper's
/// `fN` ids sort numerically first, anything else (e.g. a generated
/// `gen-0042`) sorts lexicographically after them. The registry must
/// never panic on an id shape — synthetic cases share this namespace.
fn id_sort_key(id: &str) -> (u8, u32, String) {
    match id.strip_prefix('f').and_then(|n| n.parse::<u32>().ok()) {
        Some(n) => (0, n, String::new()),
        None => (1, 0, id.to_string()),
    }
}

/// Every implemented failure case, in paper order.
pub fn all_cases() -> Vec<FailureCase> {
    let mut v = Vec::new();
    v.extend(zookeeper_cases::cases());
    v.extend(hdfs_cases::cases());
    v.extend(hbase_cases::cases());
    v.extend(kafka_cases::cases());
    v.extend(cassandra_cases::cases());
    v.sort_by_key(|c| id_sort_key(c.id));
    v
}

/// Looks up a case by its paper id (`"f17"`) or ticket (`"HB-25905"`).
pub fn case_by_id(id: &str) -> Option<FailureCase> {
    all_cases()
        .into_iter()
        .find(|c| c.id == id || c.ticket.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::id_sort_key;

    /// Paper ids order numerically (`f2` before `f10`), non-`fN` ids sort
    /// lexicographically after every paper id, and no shape panics — the
    /// old key `id[1..].parse().expect(..)` died on `gen-0042`, `f`, `""`,
    /// and even `fx`.
    #[test]
    fn id_ordering_is_total_and_panic_free() {
        let mut ids = vec!["gen-0042", "f10", "gen-0007", "f2", "fx", "", "f", "f1"];
        ids.sort_by_key(|id| id_sort_key(id));
        assert_eq!(
            ids,
            vec!["f1", "f2", "f10", "", "f", "fx", "gen-0007", "gen-0042"]
        );
    }
}
