//! The two Cassandra failures (f21–f22).

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, Value};
use anduril_sim::{NodeSpec, SimConfig, Topology};
use anduril_targets::cassandra::{self, names};

use crate::case::{DeeperCause, FailureCase};

fn scenario(name: &str, wl: &str, arg: i64, max_time: u64) -> Scenario {
    let program = cassandra::build();
    let main = program.func_named(names::CASS_MAIN).expect("cass main");
    let nodes = vec![
        NodeSpec::new("c1", main, vec![Value::Bool(true), Value::Int(1_200)]),
        NodeSpec::new("c2", main, vec![Value::Bool(false), Value::Int(1_200)]),
        NodeSpec::new("c3", main, vec![Value::Bool(false), Value::Int(1_200)]),
        NodeSpec::new(
            "client",
            program.func_named(wl).expect("workload"),
            vec![Value::Int(arg)],
        ),
    ];
    Scenario {
        name: name.to_string(),
        program,
        topology: Topology::new(nodes),
        config: SimConfig {
            max_time,
            ..SimConfig::default()
        },
    }
}

/// f21 — C*-17663: an interrupted FileStreamTask compromises the shared
/// channel proxy.
pub fn f21() -> FailureCase {
    FailureCase {
        id: "f21",
        ticket: "C*-17663",
        system: "Cassandra",
        description: "Interrupted FileStreamTask compromise shared channel proxy",
        scenario: scenario("C*-17663", names::WL_F21, 5, 18_000),
        oracle: Oracle::And(vec![
            Oracle::LogContains("FileStreamTask aborted".into()),
            Oracle::LogContains("Invalid frame received on shared channel proxy".into()),
            Oracle::GlobalEquals {
                node: "c1".into(),
                global: "channelProxyCorrupt".into(),
                value: Value::Bool(true),
            },
        ]),
        root_site_desc: names::SITE_F21,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f22 — C*-6415: snapshot repair blocks forever when a makeSnapshot
/// response never arrives.
pub fn f22() -> FailureCase {
    FailureCase {
        id: "f22",
        ticket: "C*-6415",
        system: "Cassandra",
        description: "Snapshot repair blocks forever if get no response of makeSnapshot",
        scenario: scenario("C*-6415", names::WL_F22, 0, 18_000),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Starting repair session".into()),
            Oracle::LogAbsent("Repair session completed".into()),
            Oracle::ThreadBlockedIn {
                thread: "RepairJob".into(),
                func: "awaitSnapshots".into(),
            },
        ]),
        root_site_desc: names::SITE_F22,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![DeeperCause {
            site_desc: names::SITE_F22_DEEPER,
            exc: ExceptionType::Io,
            note: "CA-18748 analog: a disk fault creating the column family \
                   at startup makes the replica drop the repair message — \
                   the same blocked-repair symptom, deeper in the chain",
        }],
    }
}

/// All Cassandra cases.
pub fn cases() -> Vec<FailureCase> {
    vec![f21(), f22()]
}
