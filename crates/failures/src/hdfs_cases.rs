//! The seven HDFS failures (f5–f11).

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, Value};
use anduril_sim::{NodeSpec, SimConfig, Topology};
use anduril_targets::hdfs::{self, names};

use crate::case::{DeeperCause, FailureCase};

struct TopoOpts {
    wl: Option<(&'static str, i64)>,
    snn_rounds: i64,
    balancer_nns: i64,
    nn_image_saves: i64,
    max_time: u64,
}

impl Default for TopoOpts {
    fn default() -> Self {
        TopoOpts {
            wl: None,
            snn_rounds: 0,
            balancer_nns: 0,
            nn_image_saves: 0,
            max_time: 25_000,
        }
    }
}

fn scenario(name: &str, opts: TopoOpts) -> Scenario {
    let program = hdfs::build();
    let mut nodes = vec![
        NodeSpec::new(
            "nn",
            program.func_named(names::NN_MAIN).expect("nn main"),
            vec![Value::Int(opts.nn_image_saves), Value::Int(1_500)],
        ),
        NodeSpec::new(
            "dn1",
            program.func_named(names::DN_MAIN).expect("dn main"),
            vec![Value::Int(1_000)],
        ),
        NodeSpec::new(
            "dn2",
            program.func_named(names::DN_MAIN).expect("dn main"),
            vec![Value::Int(1_000)],
        ),
    ];
    if opts.snn_rounds > 0 {
        nodes.push(NodeSpec::new(
            "snn",
            program.func_named(names::SNN_MAIN).expect("snn main"),
            vec![Value::Int(opts.snn_rounds)],
        ));
    }
    if opts.balancer_nns > 0 {
        nodes.push(NodeSpec::new(
            "balancer",
            program.func_named(names::BALANCER_MAIN).expect("balancer"),
            vec![Value::Int(opts.balancer_nns)],
        ));
    }
    if let Some((wl, arg)) = opts.wl {
        nodes.push(NodeSpec::new(
            "client",
            program.func_named(wl).expect("workload"),
            vec![Value::Int(arg)],
        ));
    }
    Scenario {
        name: name.to_string(),
        program,
        topology: Topology::new(nodes),
        config: SimConfig {
            max_time: opts.max_time,
            ..SimConfig::default()
        },
    }
}

/// f5 — HD-4233: rolling backup fails but the namenode keeps serving.
pub fn f5() -> FailureCase {
    FailureCase {
        id: "f5",
        ticket: "HD-4233",
        system: "HDFS",
        description: "Rolling backup fails but the server keep serving",
        scenario: scenario(
            "HD-4233",
            TopoOpts {
                wl: Some((names::WL_F5, 8)),
                nn_image_saves: 4,
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Rolling upgrade image backup failed".into()),
            Oracle::NodeAlive("nn".into()),
            // Service keeps working: every file closed despite the failed
            // backup.
            Oracle::GlobalEquals {
                node: "nn".into(),
                global: "openFiles".into(),
                value: Value::Int(0),
            },
            Oracle::LogContains("workload finished".into()),
        ]),
        root_site_desc: names::SITE_F5,
        root_exc: ExceptionType::FileNotFound,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f6 — HD-12248: the interrupted image transfer makes checkpointing skip
/// the image backup.
pub fn f6() -> FailureCase {
    FailureCase {
        id: "f6",
        ticket: "HD-12248",
        system: "HDFS",
        description: "Exception when transferring file system image to namenode causes the namenode checkpointing to ignore the image backup",
        scenario: scenario(
            "HD-12248",
            TopoOpts {
                wl: Some((names::WL_F6, 5)),
                snn_rounds: 3,
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Checkpoint completed without image backup".into()),
            // All three checkpoints "done" but only two images uploaded.
            Oracle::GlobalEquals {
                node: "snn".into(),
                global: "checkpointsDone".into(),
                value: Value::Int(3),
            },
            Oracle::GlobalEquals {
                node: "nn".into(),
                global: "backupImages".into(),
                value: Value::Int(2),
            },
        ]),
        root_site_desc: names::SITE_F6,
        root_exc: ExceptionType::Interrupted,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f7 — HD-12070: failed block recovery leaves files open indefinitely.
pub fn f7() -> FailureCase {
    FailureCase {
        id: "f7",
        ticket: "HD-12070",
        system: "HDFS",
        description: "Files will remain open indefinitely if block recovery fails which creates a high risk of data loss",
        scenario: scenario(
            "HD-12070",
            TopoOpts {
                wl: Some((names::WL_F7, 10)),
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Block recovery failed, file remains open".into()),
            Oracle::GlobalAtLeast {
                node: "nn".into(),
                global: "openFiles".into(),
                min: 1,
            },
            Oracle::LogContains("workload finished".into()),
        ]),
        root_site_desc: names::SITE_F7,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![DeeperCause {
            site_desc: names::SITE_F7_DEEPER,
            exc: ExceptionType::Socket,
            note: "HD-17157 analog: a network fault in the second stage of \
                   block recovery (no commitBlockSync response) leaves the \
                   file open just the same",
        }],
    }
}

/// f8 — HD-13039: block creation leaks a socket on the exception path.
pub fn f8() -> FailureCase {
    FailureCase {
        id: "f8",
        ticket: "HD-13039",
        system: "HDFS",
        description: "Data block creation leaks socket on exception",
        scenario: scenario(
            "HD-13039",
            TopoOpts {
                wl: Some((names::WL_F8, 10)),
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Block creation failed".into()),
            Oracle::GlobalAtLeast {
                node: "dn1".into(),
                global: "leakedSockets".into(),
                min: 1,
            },
            // Timing pin: four blocks were written before the leak.
            Oracle::GlobalEquals {
                node: "dn1".into(),
                global: "blocksWritten".into(),
                value: Value::Int(9),
            },
        ]),
        root_site_desc: names::SITE_F8,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f9 — HD-16332: an expired block token makes reads slow.
pub fn f9() -> FailureCase {
    FailureCase {
        id: "f9",
        ticket: "HD-16332",
        system: "HDFS",
        description: "Missing handling of expired block token causes slow read",
        scenario: scenario(
            "HD-16332",
            TopoOpts {
                wl: Some((names::WL_F9, 6)),
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogCountAtLeast("Retrying read after block token error".into(), 3),
            Oracle::LogContains("Block token could not be verified".into()),
            // All reads do complete — the failure is slowness, not loss.
            Oracle::GlobalEquals {
                node: "client".into(),
                global: "readsCompleted".into(),
                value: Value::Int(6),
            },
        ]),
        root_site_desc: names::SITE_F9,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f10 — HD-14333: a disk error during storage init keeps the datanode
/// from starting.
pub fn f10() -> FailureCase {
    FailureCase {
        id: "f10",
        ticket: "HD-14333",
        system: "HDFS",
        description: "Disk error during namenode registration causes datanodes fail to start",
        scenario: scenario(
            "HD-14333",
            TopoOpts {
                wl: Some((names::WL_F10, 6)),
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Failed to initialize storage directory".into()),
            Oracle::LogContains("Uncaught exception IOException".into()),
            Oracle::GlobalEquals {
                node: "dn1".into(),
                global: "dnStarted".into(),
                value: Value::Bool(false),
            },
            Oracle::GlobalEquals {
                node: "dn2".into(),
                global: "dnStarted".into(),
                value: Value::Bool(true),
            },
        ]),
        root_site_desc: names::SITE_F10,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f11 — HD-15032: the balancer crashes contacting an unavailable
/// namenode.
pub fn f11() -> FailureCase {
    FailureCase {
        id: "f11",
        ticket: "HD-15032",
        system: "HDFS",
        description: "Balancer crashes when it fails to contact an unavailable namenode",
        scenario: scenario(
            "HD-15032",
            TopoOpts {
                wl: Some((names::WL_F5, 4)),
                balancer_nns: 2,
                ..TopoOpts::default()
            },
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Uncaught exception SocketException".into()),
            Oracle::LogAbsent("Balancing round complete".into()),
            // The crash happened while contacting the *second* namenode.
            Oracle::GlobalEquals {
                node: "balancer".into(),
                global: "balancerRounds".into(),
                value: Value::Int(1),
            },
        ]),
        root_site_desc: names::SITE_F11,
        root_exc: ExceptionType::Socket,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// All HDFS cases.
pub fn cases() -> Vec<FailureCase> {
    vec![f5(), f6(), f7(), f8(), f9(), f10(), f11()]
}
