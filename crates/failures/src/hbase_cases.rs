//! The six HBase failures (f12–f17).

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, Value};
use anduril_sim::{NodeSpec, SimConfig, Topology};
use anduril_targets::hbase::{self, names};

use crate::case::{DeeperCause, FailureCase};

fn scenario(
    name: &str,
    wl: &str,
    wl_args: Vec<Value>,
    rs1_args: (i64, i64, i64),
    with_rs2: bool,
    max_time: u64,
) -> Scenario {
    let program = hbase::build();
    let mut nodes = vec![
        NodeSpec::new(
            "master",
            program.func_named(names::MASTER_MAIN).expect("master main"),
            vec![Value::Int(1_500)],
        ),
        NodeSpec::new(
            "rs1",
            program.func_named(names::RS_MAIN).expect("rs main"),
            vec![
                Value::Int(rs1_args.0),
                Value::Int(rs1_args.1),
                Value::Int(rs1_args.2),
            ],
        ),
    ];
    if with_rs2 {
        nodes.push(NodeSpec::new(
            "rs2",
            program.func_named(names::RS_MAIN).expect("rs main"),
            vec![Value::Int(0), Value::Int(0), Value::Int(1_200)],
        ));
    }
    nodes.push(NodeSpec::new(
        "client",
        program.func_named(wl).expect("workload"),
        wl_args,
    ));
    Scenario {
        name: name.to_string(),
        program,
        topology: Topology::new(nodes),
        config: SimConfig {
            max_time,
            ..SimConfig::default()
        },
    }
}

/// f12 — HB-18137: an empty WAL file wedges replication.
pub fn f12() -> FailureCase {
    FailureCase {
        id: "f12",
        ticket: "HB-18137",
        system: "HBase",
        description: "Empty WAL file causes Replication to get stuck",
        scenario: scenario(
            "HB-18137",
            names::WL_F12,
            vec![Value::Int(30)],
            (6, 40, 1_000),
            false,
            20_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Replication made no progress".into()),
            Oracle::GlobalEquals {
                node: "rs1".into(),
                global: "replStalled".into(),
                value: Value::Bool(true),
            },
        ]),
        root_site_desc: names::SITE_F12,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![DeeperCause {
            site_desc: "zk.addReplicationPeer",
            exc: ExceptionType::Io,
            note: "HB-28014 analog: an underlying fault adding the \
                   replication peer also wedges replication behind the \
                   same no-progress symptom",
        }],
    }
}

/// f13 — HB-19608: a failed procedure store update wrongly poisons the
/// whole executor.
pub fn f13() -> FailureCase {
    FailureCase {
        id: "f13",
        ticket: "HB-19608",
        system: "HBase",
        description: "Interrupted procedure mistakenly causes a failed state flag",
        scenario: scenario(
            "HB-19608",
            names::WL_F13,
            vec![Value::Int(8)],
            (0, 0, 800),
            false,
            15_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Procedure blocked by failed-state flag".into()),
            // Timing pin: exactly three procedures completed first.
            Oracle::GlobalEquals {
                node: "master".into(),
                global: "proceduresDone".into(),
                value: Value::Int(3),
            },
        ]),
        root_site_desc: names::SITE_F13,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f14 — HB-19876: a conversion exception desynchronizes the CellScanner.
pub fn f14() -> FailureCase {
    FailureCase {
        id: "f14",
        ticket: "HB-19876",
        system: "HBase",
        description: "The exception happening in converting pb mutation messes up the CellScanner",
        scenario: scenario(
            "HB-19876",
            names::WL_F14,
            vec![Value::Int(6)],
            (0, 0, 800),
            false,
            15_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Malformed cell data written to region".into()),
            Oracle::GlobalAtLeast {
                node: "rs1".into(),
                global: "corruptRows".into(),
                min: 1,
            },
        ]),
        root_site_desc: names::SITE_F14,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f15 — HB-20583: a split failure resubmits a different (already
/// completed) split task.
pub fn f15() -> FailureCase {
    FailureCase {
        id: "f15",
        ticket: "HB-20583",
        system: "HBase",
        description:
            "The failure during splitting log causes resubmit of another failed splitting task",
        scenario: scenario(
            "HB-20583",
            names::WL_F15,
            vec![Value::Int(6)],
            (0, 0, 1_200),
            false,
            20_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("executed twice".into()),
            Oracle::GlobalAtLeast {
                node: "rs1".into(),
                global: "doubleSplitTasks".into(),
                min: 1,
            },
        ]),
        root_site_desc: names::SITE_F15,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f16 — HB-16144: the replication-queue lock leaks when the region server
/// holding it aborts.
pub fn f16() -> FailureCase {
    FailureCase {
        id: "f16",
        ticket: "HB-16144",
        system: "HBase",
        description: "Replication queue's lock will live forever if regionserver acquiring the lock has died prematurely",
        scenario: scenario(
            "HB-16144",
            names::WL_F16,
            vec![Value::Int(6)],
            (0, 0, 1_600),
            true,
            25_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::NodeAborted("rs1".into()),
            Oracle::LogContains("Could not claim replication queue".into()),
            Oracle::GlobalEquals {
                node: "master".into(),
                global: "replLockHolder".into(),
                value: Value::str("rs1"),
            },
        ]),
        root_site_desc: names::SITE_F16,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f17 — HB-25905: the motivating example; a transient HDFS fault wedges
/// the WAL at `waitForSafePoint`.
pub fn f17() -> FailureCase {
    FailureCase {
        id: "f17",
        ticket: "HB-25905",
        system: "HBase",
        description: "Transient namenode failure in HDFS causes WAL services in HBase to stop making any progress",
        scenario: scenario(
            "HB-25905",
            names::WL_F17,
            vec![Value::Int(64)],
            (6, 0, 900),
            false,
            12_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogCountAtLeast("Failed to get sync result".into(), 3),
            Oracle::Not(Box::new(Oracle::ThreadDone("LogRoller".into()))),
            Oracle::GlobalAtLeast {
                node: "rs1".into(),
                global: "unackedAppends".into(),
                min: 1,
            },
        ]),
        root_site_desc: names::SITE_F17,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// All HBase cases.
pub fn cases() -> Vec<FailureCase> {
    vec![f12(), f13(), f14(), f15(), f16(), f17()]
}
