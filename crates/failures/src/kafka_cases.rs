//! The three Kafka failures (f18–f20).

use anduril_core::{Oracle, Scenario};
use anduril_ir::{ExceptionType, Value};
use anduril_sim::{NodeSpec, SimConfig, Topology};
use anduril_targets::kafka::{self, names};

use crate::case::{DeeperCause, FailureCase};

fn scenario(name: &str, nodes: Vec<NodeSpec>, max_time: u64) -> Scenario {
    Scenario {
        name: name.to_string(),
        program: kafka::build(),
        topology: Topology::new(nodes),
        config: SimConfig {
            max_time,
            ..SimConfig::default()
        },
    }
}

/// f18 — KA-12508: emit-on-change tables lose updates after an error and
/// restart.
pub fn f18() -> FailureCase {
    let program = kafka::build();
    let streams = program.func_named(names::STREAMS_MAIN).expect("streams");
    let broker = program.func_named(names::BROKER_MAIN).expect("broker");
    let wl = program.func_named(names::WL_F18).expect("wl");
    FailureCase {
        id: "f18",
        ticket: "KA-12508",
        system: "Kafka",
        description: "Emit-on-change tables lose updates after error and restart",
        scenario: scenario(
            "KA-12508",
            vec![
                NodeSpec::new("broker1", broker, vec![Value::Int(800)]),
                NodeSpec::new("streams", streams, vec![Value::Int(700)]),
                NodeSpec::new("client", wl, vec![Value::Int(5)]),
            ],
            18_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("restarting stream task".into()),
            // Timing pin: the lost change is value 2 (two changes emitted
            // before the fault).
            Oracle::GlobalEquals {
                node: "streams".into(),
                global: "changesEmitted".into(),
                value: Value::Int(4),
            },
            Oracle::LogAbsent("Emitted change for value 2".into()),
        ]),
        root_site_desc: names::SITE_F18,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// f19 — KA-9374: a blocked connector disables the whole worker. The
/// deeper-cause entry (KA-15339 analog) notes the startup changelog append
/// can block the same herder path.
pub fn f19() -> FailureCase {
    let program = kafka::build();
    let worker = program.func_named(names::WORKER_MAIN).expect("worker");
    let broker = program.func_named(names::BROKER_MAIN).expect("broker");
    let wl = program.func_named(names::WL_F19).expect("wl");
    FailureCase {
        id: "f19",
        ticket: "KA-9374",
        system: "Kafka",
        description: "Blocked connectors disable the Workers",
        scenario: scenario(
            "KA-9374",
            vec![
                NodeSpec::new("broker1", broker, vec![Value::Int(800)]),
                NodeSpec::new("worker", worker, vec![Value::Int(1_200)]),
                NodeSpec::new("client", wl, vec![Value::Int(0)]),
            ],
            18_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("REST request timed out".into()),
            Oracle::LogContains("Starting connector".into()),
            Oracle::GlobalEquals {
                node: "worker".into(),
                global: "connectorsStarted".into(),
                value: Value::Int(0),
            },
        ]),
        root_site_desc: names::SITE_F19,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![DeeperCause {
            site_desc: "store.appendConfigLog",
            exc: ExceptionType::Io,
            note: "KA-15339 analog: a disk fault appending records at \
                   connector startup blocks the same herder path",
        }],
    }
}

/// f20 — KA-10048: consumer failover under MM2 leaves a data gap between
/// clusters.
pub fn f20() -> FailureCase {
    let program = kafka::build();
    let broker = program.func_named(names::BROKER_MAIN).expect("broker");
    let mm2 = program.func_named(names::MM2_MAIN).expect("mm2");
    let wl = program.func_named(names::WL_F20).expect("wl");
    FailureCase {
        id: "f20",
        ticket: "KA-10048",
        system: "Kafka",
        description: "Consumer's failover under MM2 replication configuration causes data gap between 2 clusters",
        scenario: scenario(
            "KA-10048",
            vec![
                NodeSpec::new("broker1", broker, vec![Value::Int(900)]),
                NodeSpec::new("mm2", mm2, vec![Value::Int(8)]),
                NodeSpec::new("client", wl, vec![Value::Int(12)]),
            ],
            18_000,
        ),
        oracle: Oracle::And(vec![
            Oracle::LogContains("Data gap of".into()),
            Oracle::GlobalAtLeast {
                node: "mm2".into(),
                global: "gapRecords".into(),
                min: 1,
            },
        ]),
        root_site_desc: names::SITE_F20,
        root_exc: ExceptionType::Io,
        failure_seed: 2_024,
        deeper_causes: vec![],
    }
}

/// All Kafka cases.
pub fn cases() -> Vec<FailureCase> {
    vec![f18(), f19(), f20()]
}
