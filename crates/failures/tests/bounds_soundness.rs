//! Differential soundness check for the static occurrence bounds (§4.1 of
//! DESIGN.md §14): for every case, the abstract interpretation's `[lo, hi]`
//! interval must contain the dynamic occurrence count actually observed
//! under the failure seed, plans beyond `hi` must be unexecutable, and the
//! ground-truth root cause must never be pruned as infeasible.

use anduril_core::OccurrenceBounds;
use anduril_failures::all_cases;
use anduril_sim::InjectionPlan;

/// Static hi must over-approximate and lo under-approximate the dynamic
/// occurrence count of every fault site, on every case.
#[test]
fn static_bounds_contain_dynamic_occurrence_counts() {
    for case in all_cases() {
        let bounds = OccurrenceBounds::compute(&case.scenario.program, &case.scenario.root_calls());
        let normal = case
            .scenario
            .run(case.failure_seed, InjectionPlan::none())
            .expect("fault-free run");
        for site in &case.scenario.program.sites {
            let dynamic = normal.site_occurrences[site.id.index()] as u64;
            let b = bounds.site(site.id);
            assert!(
                b.lo <= dynamic,
                "{}: site `{}` ({:?}) lo {} > dynamic count {dynamic}",
                case.id,
                site.desc,
                site.id,
                b.lo
            );
            if let Some(hi) = b.hi {
                assert!(
                    dynamic <= hi,
                    "{}: site `{}` ({:?}) dynamic count {dynamic} > hi {hi} — \
                     the bound is unsound",
                    case.id,
                    site.desc,
                    site.id,
                );
            }
        }
    }
}

/// Injecting at occurrence `hi` (the first claimed-impossible index) must
/// never fire: the run completes with zero injections.
#[test]
fn plans_beyond_hi_never_inject() {
    for case in all_cases() {
        let bounds = OccurrenceBounds::compute(&case.scenario.program, &case.scenario.root_calls());
        // A handful of finite-hi sites per case keeps the debug-profile
        // runtime proportionate; the interval containment test above
        // already sweeps every site statically.
        let mut probed = 0usize;
        for site in &case.scenario.program.sites {
            let Some(hi) = bounds.site(site.id).hi else {
                continue;
            };
            let Some(&exc) = site.exceptions.first() else {
                continue;
            };
            // Occurrence indices are u32 in plans; an astronomically large
            // hi is equivalent to unbounded for this probe.
            let Ok(occ) = u32::try_from(hi) else { continue };
            let r = case
                .scenario
                .run(case.failure_seed, InjectionPlan::exact(site.id, occ, exc))
                .expect("run with infeasible plan");
            assert!(
                r.injected.is_none(),
                "{}: site `{}` fired at occurrence {occ} despite hi = {hi}",
                case.id,
                site.desc,
            );
            probed += 1;
            if probed >= 6 {
                break;
            }
        }
    }
}

/// Statically dead sites (`hi == 0`) must never execute: injection armed at
/// occurrence 0 does not fire.
#[test]
fn dead_sites_never_fire() {
    for case in all_cases() {
        let bounds = OccurrenceBounds::compute(&case.scenario.program, &case.scenario.root_calls());
        for site in &case.scenario.program.sites {
            if !bounds.site(site.id).is_dead() {
                continue;
            }
            let Some(&exc) = site.exceptions.first() else {
                continue;
            };
            let r = case
                .scenario
                .run(case.failure_seed, InjectionPlan::exact(site.id, 0, exc))
                .expect("run with dead-site plan");
            assert!(
                r.injected.is_none(),
                "{}: statically dead site `{}` fired",
                case.id,
                site.desc,
            );
        }
    }
}

/// The ground-truth root cause is always statically feasible: its site is
/// never dead, and its occurrence index lies below `hi` when `hi` is finite.
#[test]
fn ground_truth_occurrence_is_statically_feasible() {
    for case in all_cases() {
        let gt = case.ground_truth().expect("resolvable ground truth");
        let bounds = OccurrenceBounds::compute(&case.scenario.program, &case.scenario.root_calls());
        let b = bounds.site(gt.site);
        assert!(
            !b.is_dead(),
            "{}: ground-truth site claimed statically dead",
            case.id
        );
        if let Some(hi) = b.hi {
            assert!(
                u64::from(gt.occurrence) < hi,
                "{}: ground-truth occurrence {} not below hi {hi}",
                case.id,
                gt.occurrence
            );
        }
        assert!(
            bounds.feasible(gt.site, Some(gt.occurrence)),
            "{}: feasible() rejects the ground truth",
            case.id
        );
    }
}
