//! Per-case invariants for the 22 failure definitions.

use anduril_failures::{all_cases, case_by_id};
use anduril_logdiff::parse_log;
use anduril_sim::InjectionPlan;

#[test]
fn lookup_by_id_and_ticket() {
    assert!(case_by_id("f1").is_some());
    assert!(case_by_id("ZK-2247").is_some());
    assert!(
        case_by_id("hb-25905").is_some(),
        "ticket lookup is case-insensitive"
    );
    assert!(case_by_id("f23").is_none());
    assert!(case_by_id("NOPE-1").is_none());
}

#[test]
fn failure_logs_parse_and_differ_from_normal_runs() {
    for case in all_cases() {
        let failure_text = case.failure_log().expect("failure log renders");
        let parsed = parse_log(&failure_text);
        assert!(
            parsed.len() >= 10,
            "{}: failure log suspiciously short ({} entries)",
            case.id,
            parsed.len()
        );
        // The failure log must be discriminative: it differs from a
        // fault-free run under the same seed (the paper's assumption that
        // logging distinguishes faulty and non-faulty executions).
        let normal = case
            .scenario
            .run(case.failure_seed, InjectionPlan::none())
            .expect("normal run");
        assert_ne!(
            normal.log_text(),
            failure_text,
            "{}: failure log identical to a fault-free run",
            case.id
        );
    }
}

#[test]
fn ground_truth_occurrence_is_within_observed_instances() {
    for case in all_cases() {
        let gt = case.ground_truth().expect("resolvable");
        let normal = case
            .scenario
            .run(case.failure_seed, InjectionPlan::none())
            .expect("normal run");
        let total = normal.site_occurrences[gt.site.index()];
        assert!(
            gt.occurrence < total,
            "{}: ground-truth occurrence {} outside observed range {}",
            case.id,
            gt.occurrence,
            total
        );
    }
}

#[test]
fn injecting_at_a_wrong_site_does_not_satisfy_timing_pinned_oracles() {
    // For the timing-pinned cases, a different occurrence of the root site
    // must NOT satisfy the oracle — the timing is part of the failure.
    for id in ["f1", "f13", "f20"] {
        let case = case_by_id(id).expect("case");
        let gt = case.ground_truth().expect("gt");
        let wrong_occ = if gt.occurrence == 0 {
            1
        } else {
            gt.occurrence - 1
        };
        let r = case
            .scenario
            .run(
                case.failure_seed,
                InjectionPlan::exact(gt.site, wrong_occ, gt.exc),
            )
            .expect("run");
        assert!(
            !case.oracle.check(&r),
            "{id}: occurrence {wrong_occ} also satisfies — timing is not pinned"
        );
    }
}

#[test]
fn ground_truth_sites_survive_static_pruning() {
    // The reachability pruner and the causal graph may only remove noise:
    // for every case the known root-cause site must remain (a) statically
    // reachable, (b) a causal-graph source, and (c) present among the
    // candidate units with its ground-truth exception type.
    for case in all_cases() {
        let gt = case.ground_truth().expect("resolvable");
        let failure_log = case.failure_log().expect("failure log");
        let ctx = anduril_core::SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
            .expect("context");
        assert!(
            ctx.candidate_sites.contains(&gt.site),
            "{}: root-cause site pruned as unreachable",
            case.id
        );
        assert!(
            ctx.graph.sources().contains(&gt.site),
            "{}: root-cause site not a causal-graph source",
            case.id
        );
        assert!(
            ctx.units
                .iter()
                .any(|u| u.site == gt.site && u.exc == gt.exc),
            "{}: ground-truth (site, exception) unit missing after pruning",
            case.id
        );
        // (d) The static occurrence bounds must leave the ground truth
        // alive: the site is not dead and the exact occurrence is feasible.
        let bound = ctx.site_bound(gt.site);
        assert!(
            !bound.is_dead(),
            "{}: root-cause site statically dead ({bound})",
            case.id
        );
        assert!(
            ctx.occurrence_feasible(gt.site, Some(gt.occurrence)),
            "{}: ground-truth occurrence {} infeasible under bound {bound}",
            case.id,
            gt.occurrence
        );
    }
}

#[test]
fn descriptions_match_paper_table5_tickets() {
    let expected: &[(&str, &str)] = &[
        ("f1", "ZK-2247"),
        ("f2", "ZK-3157"),
        ("f3", "ZK-4203"),
        ("f4", "ZK-3006"),
        ("f5", "HD-4233"),
        ("f6", "HD-12248"),
        ("f7", "HD-12070"),
        ("f8", "HD-13039"),
        ("f9", "HD-16332"),
        ("f10", "HD-14333"),
        ("f11", "HD-15032"),
        ("f12", "HB-18137"),
        ("f13", "HB-19608"),
        ("f14", "HB-19876"),
        ("f15", "HB-20583"),
        ("f16", "HB-16144"),
        ("f17", "HB-25905"),
        ("f18", "KA-12508"),
        ("f19", "KA-9374"),
        ("f20", "KA-10048"),
        ("f21", "C*-17663"),
        ("f22", "C*-6415"),
    ];
    let cases = all_cases();
    for (id, ticket) in expected {
        let case = cases.iter().find(|c| c.id == *id).expect("present");
        assert_eq!(&case.ticket, ticket);
    }
}

#[test]
fn injected_fault_types_match_paper_table5() {
    use anduril_ir::ExceptionType::*;
    for case in all_cases() {
        let expected = match case.id {
            "f5" => FileNotFound,
            "f6" => Interrupted,
            "f11" => Socket,
            _ => Io,
        };
        assert_eq!(case.root_exc, expected, "{}", case.id);
    }
}
