//! Mechanism fidelity: replaying each ground truth must exhibit the
//! *internal* buggy workflow the ticket describes, not just the surface
//! symptom the oracle checks. This is the paper's bar for a faithful
//! reproduction ("recreate not only the superficial symptom but also the
//! exact buggy workflow").

use anduril_failures::case_by_id;
use anduril_ir::Value;
use anduril_sim::{InjectionPlan, RunResult};

fn replay(id: &str) -> (anduril_failures::FailureCase, RunResult) {
    let case = case_by_id(id).expect("case");
    let gt = case.ground_truth().expect("ground truth");
    let r = case
        .scenario
        .run(
            gt.seed,
            InjectionPlan::exact(gt.site, gt.occurrence, gt.exc),
        )
        .expect("replay");
    assert!(case.oracle.check(&r), "{id}: oracle must hold on replay");
    (case, r)
}

#[test]
fn f1_leader_aborts_and_followers_survive() {
    let (_, r) = replay("f1");
    assert!(r.node_aborted("zk1"));
    assert!(r.node_alive("zk2"));
    assert!(r.node_alive("zk3"));
    // The client exhausted its reconnect attempts.
    assert!(r.has_log("Giving up on server connection"));
}

#[test]
fn f2_client_dies_while_ensemble_stays_healthy() {
    let (_, r) = replay("f2");
    assert!(r.thread_died("main"));
    assert!(r.node_alive("zk1"));
    // The session was closed server-side before the client crash.
    assert!(r.has_log("closing session"));
}

#[test]
fn f3_listener_dead_but_leader_node_alive() {
    let (_, r) = replay("f3");
    // The defective design: only the listener thread exits; the leader
    // keeps running, which is why the stuck election is so confusing.
    assert!(r.node_alive("zk1"));
    let listener = r
        .threads
        .iter()
        .find(|t| t.thread.as_ref() == "ListenerThread")
        .expect("listener exists");
    assert_eq!(listener.state, anduril_sim::ThreadEndState::Done);
    assert_eq!(r.global("zk3", "electionStuck"), Some(&Value::Bool(true)));
}

#[test]
fn f4_database_left_uninitialized() {
    let (_, r) = replay("f4");
    assert_eq!(r.global("zk1", "dbInitialized"), Some(&Value::Bool(false)));
    assert!(r.has_log("Uncaught exception RuntimeException"));
}

#[test]
fn f5_namenode_keeps_serving_after_backup_failure() {
    let (_, r) = replay("f5");
    assert!(r.has_log("Rolling upgrade image backup failed"));
    // Writes continued after the failure (the bug: no safeguard).
    assert!(r.has_log("workload finished"));
    assert_eq!(r.global("nn", "openFiles"), Some(&Value::Int(0)));
}

#[test]
fn f6_checkpoint_counted_despite_missing_backup() {
    let (_, r) = replay("f6");
    // Three checkpoints "done" but the namenode received only two images.
    assert_eq!(r.global("snn", "checkpointsDone"), Some(&Value::Int(3)));
    assert_eq!(r.global("nn", "backupImages"), Some(&Value::Int(2)));
}

#[test]
fn f7_lease_never_released() {
    let (_, r) = replay("f7");
    let open = r.global("nn", "openFiles").and_then(Value::as_int).unwrap();
    let released = r
        .global("nn", "leasesReleased")
        .and_then(Value::as_int)
        .unwrap();
    assert!(open >= 1, "file stays open: {open}");
    assert!(
        released < open + released,
        "some leases were released normally"
    );
    assert!(r.has_log("Block recovery failed, file remains open"));
}

#[test]
fn f8_exactly_one_socket_leaked() {
    let (_, r) = replay("f8");
    assert_eq!(r.global("dn1", "leakedSockets"), Some(&Value::Int(1)));
    // Other writes succeeded and closed their sockets.
    let written = r
        .global("dn1", "blocksWritten")
        .and_then(Value::as_int)
        .unwrap();
    assert!(written >= 5);
}

#[test]
fn f9_reads_slow_but_all_complete() {
    let (_, r) = replay("f9");
    assert_eq!(r.global("client", "readsCompleted"), Some(&Value::Int(6)));
    let retries = r
        .global("client", "readRetries")
        .and_then(Value::as_int)
        .unwrap();
    assert!(retries >= 3, "the slow path was taken: {retries}");
}

#[test]
fn f10_one_datanode_down_one_up() {
    let (_, r) = replay("f10");
    assert_eq!(r.global("dn1", "dnStarted"), Some(&Value::Bool(false)));
    assert_eq!(r.global("dn2", "dnStarted"), Some(&Value::Bool(true)));
    // Only one datanode registered with the namenode.
    assert_eq!(r.global("nn", "liveDatanodes"), Some(&Value::Int(1)));
}

#[test]
fn f11_balancer_died_mid_iteration() {
    let (_, r) = replay("f11");
    assert!(r.thread_died("main"));
    assert_eq!(r.global("balancer", "balancerRounds"), Some(&Value::Int(1)));
    assert!(!r.has_log("Balancing round complete"));
}

#[test]
fn f12_replication_starved_while_wal_rolls_continue() {
    let (_, r) = replay("f12");
    assert_eq!(r.global("rs1", "replStalled"), Some(&Value::Bool(true)));
    // WAL rolling itself kept working — only replication is stuck.
    let rolls = r.global("rs1", "walFiles").and_then(Value::as_int).unwrap();
    assert!(rolls >= 2, "rolls continued: {rolls}");
}

#[test]
fn f13_procedures_blocked_after_flag() {
    let (_, r) = replay("f13");
    assert_eq!(r.global("master", "proceduresDone"), Some(&Value::Int(3)));
    assert_eq!(
        r.global("master", "procFailedFlag"),
        Some(&Value::Bool(true))
    );
    // Blocked procedures logged once per skipped procedure.
    assert!(r.count_log("Procedure blocked by failed-state flag") >= 4);
}

#[test]
fn f14_one_corrupt_row_rest_applied() {
    let (_, r) = replay("f14");
    assert_eq!(r.global("rs1", "corruptRows"), Some(&Value::Int(1)));
    assert_eq!(r.global("rs1", "mutationsApplied"), Some(&Value::Int(5)));
}

#[test]
fn f15_one_task_executed_twice() {
    let (_, r) = replay("f15");
    assert_eq!(r.global("rs1", "doubleSplitTasks"), Some(&Value::Int(1)));
    assert!(r.has_log("Resubmitting split task"));
}

#[test]
fn f16_lock_held_by_dead_server() {
    let (_, r) = replay("f16");
    assert!(r.node_aborted("rs1"));
    assert!(r.node_alive("rs2"));
    assert_eq!(
        r.global("master", "replLockHolder"),
        Some(&Value::str("rs1"))
    );
    assert_eq!(
        r.global("rs2", "claimPermanentlyFailed"),
        Some(&Value::Bool(true))
    );
}

#[test]
fn f17_exact_stale_state_of_figure_1() {
    let (_, r) = replay("f17");
    // The paper's stale state: the consumer neither syncs (writerLen ==
    // lenAtLastSync) nor signals (unackedAppends non-empty), and the
    // roller is stuck at waitForSafePoint while the consumer is alive.
    let writer_len = r
        .global("rs1", "writerLen")
        .and_then(Value::as_int)
        .unwrap();
    let last_sync = r
        .global("rs1", "lenAtLastSync")
        .and_then(Value::as_int)
        .unwrap();
    let unacked = r
        .global("rs1", "unackedAppends")
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(writer_len, last_sync, "nothing left to sync");
    assert!(unacked > 0, "but appends remain unacknowledged");
    assert_eq!(
        r.global("rs1", "readyForRolling"),
        Some(&Value::Bool(false))
    );
    assert!(r.thread_blocked_in("LogRoller", "waitForSafePoint"));
    // "the consumer thread was still alive": the worker is not dead.
    let worker = r
        .threads
        .iter()
        .find(|t| t.thread.starts_with("consumeExecutor-worker"))
        .expect("consumer exists");
    assert!(
        !matches!(worker.state, anduril_sim::ThreadEndState::Died(_)),
        "consumer alive in the stale state"
    );
}

#[test]
fn f18_lost_exactly_one_change() {
    let (_, r) = replay("f18");
    assert_eq!(r.global("streams", "changesEmitted"), Some(&Value::Int(4)));
    assert_eq!(r.global("streams", "taskRestarts"), Some(&Value::Int(1)));
    assert_eq!(r.global("streams", "lastSeenValue"), Some(&Value::Int(4)));
}

#[test]
fn f19_herder_blocked_with_no_connectors() {
    let (_, r) = replay("f19");
    assert_eq!(
        r.global("worker", "connectorsStarted"),
        Some(&Value::Int(0))
    );
    assert_eq!(
        r.global("worker", "adminConnPoisoned"),
        Some(&Value::Bool(true))
    );
    assert!(r.count_log("REST request timed out") >= 2);
}

#[test]
fn f20_gap_equals_unsynced_offsets() {
    let (_, r) = replay("f20");
    let replicated = r
        .global("mm2", "replicatedOffset")
        .and_then(Value::as_int)
        .unwrap();
    let translated = r
        .global("mm2", "translatedGroupOffset")
        .and_then(Value::as_int)
        .unwrap();
    let gap = r
        .global("mm2", "gapRecords")
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(gap, replicated - translated);
    assert!(gap >= 1);
}

#[test]
fn f21_proxy_misaligned_not_reset() {
    let (_, r) = replay("f21");
    let pos = r
        .global("c1", "channelProxyPos")
        .and_then(Value::as_int)
        .unwrap();
    assert_ne!(
        pos % anduril_targets::cassandra::FRAMES_PER_FILE,
        0,
        "the aborted task left the proxy mid-frame"
    );
    assert_eq!(
        r.global("c1", "channelProxyCorrupt"),
        Some(&Value::Bool(true))
    );
}

#[test]
fn f22_repair_waits_with_partial_acks() {
    let (_, r) = replay("f22");
    assert!(r.thread_blocked_in("RepairJob", "awaitSnapshots"));
    // One replica acked; the faulty one never responded.
    assert!(r.count_log("Snapshot acknowledged") <= 1);
    assert_eq!(r.global("c1", "repairsCompleted"), Some(&Value::Int(0)));
}
