//! Differential tests: snapshot-resume against full replay.
//!
//! A run resumed from a [`WorldSnapshot`] must be *byte-identical* to the
//! same `(seed, plan)` run replayed from step zero: same log entries, same
//! fault-site trace and occurrence counters, same RNG draw order, same
//! final thread/node snapshots, same step counts. These tests pin that
//! property over all 22 failure cases, over whole explorations (sequential
//! and `--threads 4` batched, snapshots on and off), and over the cache's
//! eviction and disabled edge cases.
//!
//! Named with a `snapshot_` prefix so CI can verify the suite was not
//! silently filtered out.
//!
//! [`WorldSnapshot`]: anduril_sim::WorldSnapshot

use anduril_core::{
    explore, explore_batched, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, Reproduction, SearchContext,
};
use anduril_failures::all_cases;
use anduril_ir::lower::compile;
use anduril_sim::{
    run_compiled, run_compiled_capture, run_compiled_resume, InjectionPlan, RunResult,
    SnapshotPolicy,
};

/// Asserts every deterministic field of two run results is identical.
/// (`wall` and `decision_ns` are host-time metrics and excluded.)
fn assert_identical(tag: &str, full: &RunResult, resumed: &RunResult) {
    assert_eq!(full.log, resumed.log, "{tag}: log streams differ");
    assert_eq!(full.trace, resumed.trace, "{tag}: fault-site traces differ");
    assert_eq!(
        full.injected, resumed.injected,
        "{tag}: injected records differ"
    );
    assert_eq!(
        full.injected_all, resumed.injected_all,
        "{tag}: injection histories differ"
    );
    assert_eq!(full.crashed, resumed.crashed, "{tag}: crash flags differ");
    assert_eq!(
        full.site_occurrences, resumed.site_occurrences,
        "{tag}: occurrence counters differ"
    );
    assert_eq!(
        full.threads, resumed.threads,
        "{tag}: thread snapshots differ"
    );
    assert_eq!(full.nodes, resumed.nodes, "{tag}: node snapshots differ");
    assert_eq!(full.end_time, resumed.end_time, "{tag}: end times differ");
    assert_eq!(full.steps, resumed.steps, "{tag}: step counts differ");
    assert_eq!(
        full.injection_requests, resumed.injection_requests,
        "{tag}: injection request counts differ"
    );
}

/// A dense capture policy so even the shortest cases take snapshots.
fn dense() -> SnapshotPolicy {
    SnapshotPolicy {
        interval_steps: 64,
        max_snapshots: 32,
    }
}

#[test]
fn snapshot_all_cases_byte_identical() {
    let mut resumed_runs = 0usize;
    for case in all_cases() {
        let gt = case.ground_truth().expect("ground truth resolves");
        let program = &case.scenario.program;
        let topo = &case.scenario.topology;
        let compiled = compile(program);
        let cfg = case.scenario.config.with_seed(gt.seed);

        // Capture must not perturb the run it observes.
        let plain = run_compiled(program, &compiled, topo, &cfg, InjectionPlan::none())
            .expect("fault-free run");
        let (captured, prefix) = run_compiled_capture(
            program,
            &compiled,
            topo,
            &cfg,
            InjectionPlan::none(),
            &dense(),
        )
        .expect("capture run");
        assert_identical(&format!("{} capture vs plain", case.id), &plain, &captured);

        // Every plan shape resumes (or silently falls back) to the exact
        // full-replay result: no plan, the ground-truth injection, and an
        // immediate occurrence-0 injection whose divergence point precedes
        // every snapshot.
        let plans = [
            ("no-op plan", InjectionPlan::none()),
            (
                "ground-truth injection",
                InjectionPlan::exact(gt.site, gt.occurrence, gt.exc),
            ),
            (
                "occurrence-0 injection",
                InjectionPlan::exact(gt.site, 0, gt.exc),
            ),
        ];
        for (name, plan) in plans {
            let full =
                run_compiled(program, &compiled, topo, &cfg, plan.clone()).expect("full run");
            let (resumed, info) =
                run_compiled_resume(program, &compiled, topo, &cfg, plan, &prefix)
                    .expect("resume run");
            assert_identical(&format!("{} {name}", case.id), &full, &resumed);
            resumed_runs += usize::from(info.resumed);
        }
    }
    // The sweep must exercise real mid-timeline resumes, not just the
    // fallback path, or the equivalence claim above is vacuous.
    assert!(
        resumed_runs > 20,
        "only {resumed_runs} runs resumed from a snapshot"
    );
}

/// Asserts the deterministic parts of two explorations agree (wall-clock
/// and decision-time metrics excluded).
fn assert_repro_agrees(tag: &str, a: &Reproduction, b: &Reproduction) {
    assert_eq!(a.success, b.success, "{tag}: success differs");
    assert_eq!(a.rounds, b.rounds, "{tag}: round counts differ");
    assert_eq!(a.script, b.script, "{tag}: reproduction scripts differ");
    assert_eq!(
        a.sim_time_total, b.sim_time_total,
        "{tag}: simulated time differs"
    );
    assert_eq!(
        a.injection_requests, b.injection_requests,
        "{tag}: injection requests differ"
    );
}

fn explore_case(case_id: &str, threads: usize, snapshot_capacity: usize) -> Reproduction {
    let case = anduril_failures::case_by_id(case_id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let mut ctx =
        SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    ctx.set_snapshot_capacity(snapshot_capacity);
    let cfg = ExplorerConfig::default();
    let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
    let repro = if threads > 1 {
        let batch = BatchExplorerConfig {
            threads,
            ..BatchExplorerConfig::default()
        };
        explore_batched(&ctx, &case.oracle, &mut strategy, &cfg, &batch, None).expect("explore")
    } else {
        explore(&ctx, &case.oracle, &mut strategy, &cfg, None).expect("explore")
    };
    if threads > 1 && snapshot_capacity > 0 {
        let stats = ctx.snapshot_stats();
        assert!(
            stats.stored > 0,
            "{case_id}: batched spec jobs stored no prefixes"
        );
    }
    repro
}

#[test]
fn snapshot_exploration_equivalence_sequential_and_batched() {
    // Snapshot-resume must be invisible to the search: same script, same
    // round count, same simulated time — sequentially, batched with 4
    // worker threads, and with the cache disabled.
    for case_id in ["f3", "f17"] {
        let seq = explore_case(case_id, 1, 16);
        assert!(seq.success, "{case_id}: expected reproduction");
        let batch_on = explore_case(case_id, 4, 16);
        let batch_off = explore_case(case_id, 4, 0);
        assert_repro_agrees(&format!("{case_id} seq vs batch+snap"), &seq, &batch_on);
        assert_repro_agrees(&format!("{case_id} snap on vs off"), &batch_on, &batch_off);
    }
}

#[test]
fn snapshot_cache_evicts_fifo_at_capacity() {
    let case = anduril_failures::case_by_id("f3").expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let mut ctx =
        SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    ctx.set_snapshot_capacity(1);
    let gt = case.ground_truth().expect("ground truth");
    let plan = InjectionPlan::exact(gt.site, gt.occurrence, gt.exc);

    // Capture three seeds through a capacity-1 cache: only the newest
    // prefix survives, and runs against evicted seeds fall back to full
    // replay with identical results.
    for seed in [2_001, 2_002, 2_003] {
        ctx.run_round_capturing(seed, InjectionPlan::none())
            .expect("capture round");
    }
    assert_eq!(ctx.snapshot_stats().stored, 1, "FIFO eviction to capacity");
    for seed in [2_001, 2_002, 2_003] {
        let via_cache = ctx.run_round(seed, plan.clone()).expect("round");
        let direct = case
            .scenario
            .run_compiled(&ctx.compiled, seed, plan.clone())
            .expect("direct run");
        assert_identical(&format!("f3 seed {seed} capacity-1"), &direct, &via_cache);
    }
    let stats = ctx.snapshot_stats();
    assert_eq!(stats.hits, 1, "only the retained seed can hit");
    assert!(stats.misses >= 2, "evicted seeds must miss");
}

#[test]
fn snapshot_capacity_zero_disables_capture_and_resume() {
    let case = anduril_failures::case_by_id("f3").expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let mut ctx =
        SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    ctx.set_snapshot_capacity(0);
    ctx.run_round_capturing(3_001, InjectionPlan::none())
        .expect("capture round");
    ctx.run_round(3_001, InjectionPlan::none()).expect("round");
    let stats = ctx.snapshot_stats();
    assert_eq!(stats.stored, 0, "disabled cache must not store");
    assert_eq!(
        stats.hits + stats.misses,
        0,
        "disabled cache must not count"
    );
}
