//! Differential tests: the register VM against the tree-walk oracle.
//!
//! Both executors must be *byte-identical*: same log entries, same
//! fault-site trace and occurrence counters, same RNG draw order, same
//! final thread/node snapshots, same step counts. These tests pin that
//! property over all 22 failure cases (faulty and fault-free runs), over
//! whole explorations (sequential and `--threads 4` batched), and over the
//! lowering pass's structural edge cases.
//!
//! Named with a `differential_` prefix so CI can verify the suite was not
//! silently filtered out.

use anduril_core::{
    explore, explore_batched, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, Reproduction, SearchContext,
};
use anduril_failures::all_cases;
use anduril_ir::builder::ProgramBuilder;
use anduril_ir::{expr as e, ExceptionType, Level, Program, Value};
use anduril_sim::{run, Engine, InjectionPlan, NodeSpec, RunResult, SimConfig, SimError, Topology};

/// Asserts every deterministic field of two run results is identical.
/// (`wall` and `decision_ns` are host-time metrics and excluded.)
fn assert_identical(tag: &str, vm: &RunResult, ast: &RunResult) {
    assert_eq!(vm.log, ast.log, "{tag}: log streams differ");
    assert_eq!(vm.trace, ast.trace, "{tag}: fault-site traces differ");
    assert_eq!(vm.injected, ast.injected, "{tag}: injected records differ");
    assert_eq!(
        vm.injected_all, ast.injected_all,
        "{tag}: injection histories differ"
    );
    assert_eq!(vm.crashed, ast.crashed, "{tag}: crash flags differ");
    assert_eq!(
        vm.site_occurrences, ast.site_occurrences,
        "{tag}: occurrence counters differ"
    );
    assert_eq!(vm.threads, ast.threads, "{tag}: thread snapshots differ");
    assert_eq!(vm.nodes, ast.nodes, "{tag}: node snapshots differ");
    assert_eq!(vm.end_time, ast.end_time, "{tag}: end times differ");
    assert_eq!(vm.steps, ast.steps, "{tag}: step counts differ");
    assert_eq!(
        vm.injection_requests, ast.injection_requests,
        "{tag}: injection request counts differ"
    );
}

/// Runs a program under both engines with the same seed and plan, and
/// asserts the results are identical. Returns the VM result.
fn run_both(
    tag: &str,
    program: &Program,
    topo: &Topology,
    cfg: &SimConfig,
    plan: InjectionPlan,
) -> RunResult {
    let vm_cfg = SimConfig {
        engine: Engine::Vm,
        ..cfg.clone()
    };
    let ast_cfg = SimConfig {
        engine: Engine::TreeWalk,
        ..cfg.clone()
    };
    let vm = run(program, topo, &vm_cfg, plan.clone()).expect("vm run");
    let ast = run(program, topo, &ast_cfg, plan).expect("tree-walk run");
    assert_identical(tag, &vm, &ast);
    vm
}

#[test]
fn differential_all_cases_byte_identical() {
    for case in all_cases() {
        let gt = case.ground_truth().expect("ground truth resolves");
        // Fault-free run.
        run_both(
            &format!("{} fault-free", case.id),
            &case.scenario.program,
            &case.scenario.topology,
            &case.scenario.config.with_seed(case.failure_seed),
            InjectionPlan::none(),
        );
        // Ground-truth injection run (the failure itself).
        run_both(
            &format!("{} ground-truth injection", case.id),
            &case.scenario.program,
            &case.scenario.topology,
            &case.scenario.config.with_seed(gt.seed),
            InjectionPlan::exact(gt.site, gt.occurrence, gt.exc),
        );
    }
}

/// Asserts the deterministic parts of two explorations agree (wall-clock
/// and decision-time metrics excluded).
fn assert_repro_agrees(tag: &str, a: &Reproduction, b: &Reproduction) {
    assert_eq!(a.success, b.success, "{tag}: success differs");
    assert_eq!(a.rounds, b.rounds, "{tag}: round counts differ");
    assert_eq!(a.script, b.script, "{tag}: reproduction scripts differ");
    assert_eq!(
        a.sim_time_total, b.sim_time_total,
        "{tag}: simulated time differs"
    );
    assert_eq!(
        a.injection_requests, b.injection_requests,
        "{tag}: injection requests differ"
    );
}

fn explore_with_engine(case_id: &str, engine: Engine, threads: usize) -> Reproduction {
    let case = anduril_failures::case_by_id(case_id).expect("case");
    let mut scenario = case.scenario.clone();
    scenario.config.engine = engine;
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(scenario, &failure_log, 1_000).expect("context");
    let cfg = ExplorerConfig::default();
    let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
    if threads > 1 {
        let batch = BatchExplorerConfig {
            threads,
            ..BatchExplorerConfig::default()
        };
        explore_batched(&ctx, &case.oracle, &mut strategy, &cfg, &batch, None).expect("explore")
    } else {
        explore(&ctx, &case.oracle, &mut strategy, &cfg, None).expect("explore")
    }
}

#[test]
fn differential_exploration_sequential_and_batched() {
    // Whole-search agreement: the engines must produce the same round
    // sequence and the same reproduction script, sequentially and under
    // speculative batched exploration with 4 worker threads.
    for case_id in ["f3", "f17"] {
        let vm_seq = explore_with_engine(case_id, Engine::Vm, 1);
        let ast_seq = explore_with_engine(case_id, Engine::TreeWalk, 1);
        assert_repro_agrees(&format!("{case_id} sequential"), &vm_seq, &ast_seq);
        assert!(vm_seq.success, "{case_id}: expected reproduction");

        let vm_batch = explore_with_engine(case_id, Engine::Vm, 4);
        let ast_batch = explore_with_engine(case_id, Engine::TreeWalk, 4);
        assert_repro_agrees(&format!("{case_id} batched"), &vm_batch, &ast_batch);
        assert_repro_agrees(&format!("{case_id} seq-vs-batch"), &vm_seq, &vm_batch);
    }
}

// ---- lowering edge cases ---------------------------------------------------

fn one_node(program: Program, main: anduril_ir::FuncId) -> (Program, Topology) {
    let topo = Topology::new(vec![NodeSpec::new("n1", main, vec![])]);
    (program, topo)
}

#[test]
fn differential_empty_function() {
    let mut pb = ProgramBuilder::new("empty");
    let noop = pb.declare("noop", 0);
    pb.body(noop, |_| {});
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        b.call(noop, vec![]);
        b.log(Level::Info, "after empty call", vec![]);
    });
    let (program, topo) = one_node(pb.finish().unwrap(), main);
    let r = run_both(
        "empty function",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::none(),
    );
    assert!(r.has_log("after empty call"));
}

#[test]
fn differential_fault_site_only_function() {
    // A function whose only statement is a fault site: the lowered block
    // is a single `External` instruction.
    let mut pb = ProgramBuilder::new("site-only");
    let touch = pb.declare("touch", 0);
    pb.body(touch, |b| {
        b.external("disk.touch", &[ExceptionType::Io]);
    });
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        b.try_catch(
            |b| {
                b.call(touch, vec![]);
                b.log(Level::Info, "touch ok", vec![]);
            },
            ExceptionType::Io,
            |b| {
                b.log(Level::Warn, "touch failed", vec![]);
            },
        );
    });
    let (program, topo) = one_node(pb.finish().unwrap(), main);
    let ok = run_both(
        "site-only fault-free",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::none(),
    );
    assert!(ok.has_log("touch ok"));
    let faulty = run_both(
        "site-only injected",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::exact(anduril_ir::SiteId(0), 0, ExceptionType::Io),
    );
    assert!(faulty.has_log("touch failed"));
}

#[test]
fn differential_zero_arg_templates() {
    // Zero-argument templates take the VM's pre-rendered fast path; holed
    // templates go through the segment renderer. (The builder rejects
    // hole/arg arity mismatches, so the `?` fallback is unreachable here.)
    let mut pb = ProgramBuilder::new("templates");
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        b.log(Level::Info, "plain text, no holes", vec![]);
        b.log(Level::Warn, "{}", vec![e::str_("bare hole")]);
        b.log(
            Level::Info,
            "{} leading and trailing {}",
            vec![e::int(1), e::int(2)],
        );
        b.log(
            Level::Info,
            "x={} y={} list={}",
            vec![
                e::int(-7),
                e::bool_(true),
                e::list(vec![e::int(1), e::str_("two")]),
            ],
        );
    });
    let (program, topo) = one_node(pb.finish().unwrap(), main);
    let r = run_both(
        "zero-arg templates",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::none(),
    );
    assert!(r.has_log("plain text, no holes"));
    assert!(r.has_log("bare hole"));
    assert!(r.has_log("1 leading and trailing 2"));
    assert!(r.has_log("x=-7 y=true list=[1, two]"));
}

#[test]
fn differential_cross_thread_submit_await_chain() {
    // A Submit/Await chain across an executor, with a fault site inside
    // the task: exercises worker-thread naming, future completion, and
    // cross-thread exception propagation in both engines.
    let mut pb = ProgramBuilder::new("chain");
    let pool = pb.executor("pool");
    let work = pb.declare("work", 1);
    pb.body(work, |b| {
        let x = b.param(0);
        b.external("net.fetch", &[ExceptionType::Io]);
        b.ret(Some(e::add(e::var(x), e::int(1))));
    });
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        let f1 = b.local();
        let f2 = b.local();
        let v = b.local();
        b.submit(pool, work, vec![e::int(10)], f1);
        b.submit(pool, work, vec![e::int(20)], f2);
        b.try_catch(
            |b| {
                b.await_(f1, None, Some(v));
                b.log(Level::Info, "first task -> {}", vec![e::var(v)]);
                b.await_(f2, None, Some(v));
                b.log(Level::Info, "second task -> {}", vec![e::var(v)]);
            },
            ExceptionType::Execution,
            |b| {
                b.log_exc(Level::Error, "task failed", vec![]);
            },
        );
    });
    let (program, topo) = one_node(pb.finish().unwrap(), main);
    let ok = run_both(
        "submit/await fault-free",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::none(),
    );
    assert!(ok.has_log("first task -> 11"));
    assert!(ok.has_log("second task -> 21"));
    let faulty = run_both(
        "submit/await injected",
        &program,
        &topo,
        &SimConfig::default(),
        InjectionPlan::exact(anduril_ir::SiteId(0), 1, ExceptionType::Io),
    );
    assert!(faulty.has_log("task failed"));
}

#[test]
fn differential_tree_walk_unavailable_without_oracle() {
    // The default build rejects Engine::TreeWalk with a clear error when
    // the oracle is compiled out; with the feature (as here) it runs.
    let mut pb = ProgramBuilder::new("t");
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        b.log(Level::Info, "hi", vec![]);
    });
    let (program, topo) = one_node(pb.finish().unwrap(), main);
    let cfg = SimConfig {
        engine: Engine::TreeWalk,
        ..SimConfig::default()
    };
    let r: Result<RunResult, SimError> = run(&program, &topo, &cfg, InjectionPlan::none());
    assert!(r.is_ok(), "oracle feature is enabled for this test target");
    // Seeds must round-trip through `with_seed` without losing the engine.
    assert_eq!(cfg.with_seed(7).engine, Engine::TreeWalk);
    let _ = Value::Unit; // silence unused-import pedantry if builders change
}
