//! Baseline fault-injection strategies: the paper's ablation variants and
//! external comparators.
//!
//! The five ablation variants of §8.3 (exhaustive, fault-site distance,
//! distance with instance limit, fault-site feedback, multiply feedback)
//! are configurations of [`anduril_core::FeedbackStrategy`]; this crate
//! re-exports constructors for them and adds the external tools of §8.4:
//!
//! - [`StacktraceInjector`] — injects only at fault sites extracted from
//!   throwables logged in the failure log, guarded on stack matches;
//! - [`Fate`] — FATE-style breadth-first coverage over failure IDs;
//! - [`CrashTuner`] — crash injection at meta-info access points (plus an
//!   exception-injection adaptation of the same timing heuristic).

#![warn(missing_docs)]

pub mod crashtuner;
pub mod fate;
pub mod stacktrace;

pub use crashtuner::{CrashTuner, Mode};
pub use fate::Fate;
pub use stacktrace::StacktraceInjector;

use anduril_core::{FeedbackConfig, FeedbackStrategy, Strategy};

/// Every strategy evaluated in Table 2, in column order.
///
/// Returns `(column name, strategy)` pairs; the first entry is full
/// ANDURIL.
pub fn table2_strategies() -> Vec<(&'static str, Box<dyn Strategy>)> {
    vec![
        (
            "full-feedback",
            Box::new(FeedbackStrategy::new(FeedbackConfig::full())),
        ),
        (
            "exhaustive",
            Box::new(FeedbackStrategy::new(FeedbackConfig::exhaustive())),
        ),
        (
            "site-distance",
            Box::new(FeedbackStrategy::new(FeedbackConfig::site_distance())),
        ),
        (
            "site-distance-limit3",
            Box::new(FeedbackStrategy::new(
                FeedbackConfig::site_distance_limited(),
            )),
        ),
        (
            "site-feedback",
            Box::new(FeedbackStrategy::new(FeedbackConfig::site_feedback())),
        ),
        (
            "multiply-feedback",
            Box::new(FeedbackStrategy::new(FeedbackConfig::multiply())),
        ),
        ("fate", Box::new(Fate::new())),
        ("crashtuner", Box::new(CrashTuner::crashes())),
        (
            "crashtuner-meta-exc",
            Box::new(CrashTuner::meta_exceptions()),
        ),
    ]
}
