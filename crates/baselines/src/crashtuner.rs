//! A CrashTuner-style comparator (§8.4).
//!
//! CrashTuner [Lu et al., SOSP '19] injects node *crashes* at accesses to
//! *meta-info variables* (node membership, leadership, epochs), where
//! crash-recovery bugs concentrate. Two modes are provided:
//!
//! - [`CrashTuner::crashes`] — the faithful tool: one node crash per round
//!   at the next `(meta-access point, occurrence)`. It can only reproduce
//!   failures whose oracle is satisfiable by a crash, which is why the
//!   paper reports it reproducing only 4 of 22 failures.
//! - [`CrashTuner::meta_exceptions`] — an adaptation that keeps the
//!   meta-info *timing heuristic* but injects exceptions at fault sites in
//!   functions touching meta-info state, making it comparable on
//!   exception-induced failures.

use std::collections::HashSet;

use anduril_core::{RoundOutcome, SearchContext, Strategy, StrategyNote};
use anduril_ir::{ExceptionType, SiteId, StmtRef};
use anduril_sim::{world::meta_access_points, Candidate, CrashPoint, InjectionPlan};

/// Injection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Node crashes at meta-info access points (the faithful tool).
    Crashes,
    /// Exceptions at fault sites within meta-touching functions.
    MetaExceptions,
}

/// The CrashTuner-style strategy.
#[derive(Debug)]
pub struct CrashTuner {
    mode: Mode,
    /// Crash mode: `(stmt, occurrence)` queue.
    crash_queue: Vec<(StmtRef, u32)>,
    crash_next: usize,
    /// Exception mode: `(site, occurrence, exc)` queue.
    exc_order: Vec<(SiteId, u32, ExceptionType)>,
    tried: HashSet<(SiteId, u32, ExceptionType)>,
    window: usize,
    pending_notes: Vec<StrategyNote>,
}

impl CrashTuner {
    /// The faithful crash-injection mode.
    pub fn crashes() -> Self {
        CrashTuner {
            mode: Mode::Crashes,
            crash_queue: Vec::new(),
            crash_next: 0,
            exc_order: Vec::new(),
            tried: HashSet::new(),
            window: 10,
            pending_notes: Vec::new(),
        }
    }

    /// The exception-injection adaptation.
    pub fn meta_exceptions() -> Self {
        CrashTuner {
            mode: Mode::MetaExceptions,
            ..Self::crashes()
        }
    }

    /// Occurrences per crash point explored in crash mode.
    const CRASH_OCCURRENCES: u32 = 3;
}

impl Strategy for CrashTuner {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Crashes => "crashtuner",
            Mode::MetaExceptions => "crashtuner-meta-exc",
        }
    }

    fn init(&mut self, ctx: &SearchContext) {
        let program = &ctx.scenario.program;
        self.crash_queue.clear();
        self.crash_next = 0;
        self.exc_order.clear();
        self.tried.clear();
        self.pending_notes.clear();
        let points = meta_access_points(program);
        match self.mode {
            Mode::Crashes => {
                for occ in 0..Self::CRASH_OCCURRENCES {
                    for &p in &points {
                        self.crash_queue.push((p, occ));
                    }
                }
            }
            Mode::MetaExceptions => {
                // Functions containing a meta-info access, plus their
                // direct callees (the crash-recovery-relevant code is
                // usually one call away from the membership bookkeeping).
                let mut meta_funcs: HashSet<_> =
                    points.iter().map(|&p| program.func_of_stmt(p)).collect();
                let mut extended = meta_funcs.clone();
                for (sref, stmt) in program.all_stmts() {
                    if let anduril_ir::Stmt::Call { func, .. }
                    | anduril_ir::Stmt::Submit { func, .. }
                    | anduril_ir::Stmt::Spawn { func, .. } = stmt
                    {
                        if meta_funcs.contains(&program.func_of_stmt(sref)) {
                            extended.insert(*func);
                        }
                    }
                }
                meta_funcs = extended;
                let max_occ = ctx.site_instances.iter().map(Vec::len).max().unwrap_or(1) as u32;
                let mut bound_pruned = 0usize;
                for occ in 0..max_occ.max(1) {
                    for &sid in &ctx.candidate_sites {
                        let site = &program.sites[sid.index()];
                        if meta_funcs.contains(&site.func)
                            && (occ as usize) < ctx.site_instances[sid.index()].len().max(1)
                        {
                            if !ctx.occurrence_feasible(sid, Some(occ)) {
                                bound_pruned += site.exceptions.len();
                            }
                            for &exc in &site.exceptions {
                                self.exc_order.push((sid, occ, exc));
                            }
                        }
                    }
                }
                if bound_pruned > 0 {
                    self.pending_notes.push(StrategyNote::BoundPruned {
                        count: bound_pruned,
                    });
                }
            }
        }
    }

    fn plan_round(&mut self, ctx: &SearchContext, _round: usize) -> Vec<Candidate> {
        // As in [`Fate`], statically infeasible `(site, occurrence)` plans
        // keep their queue slot (the window pacing is the baseline under
        // comparison) but are never armed.
        self.exc_order
            .iter()
            .filter(|c| !self.tried.contains(c))
            .take(self.window)
            .filter(|&&(site, occ, _)| ctx.occurrence_feasible(site, Some(occ)))
            .map(|&(site, occ, exc)| Candidate {
                site,
                occurrence: Some(occ),
                exc,
                stack: None,
            })
            .collect()
    }

    fn plan_injection(&mut self, ctx: &SearchContext, round: usize) -> Option<InjectionPlan> {
        match self.mode {
            Mode::Crashes => {
                let &(stmt, occurrence) = self.crash_queue.get(self.crash_next)?;
                self.crash_next += 1;
                Some(InjectionPlan {
                    candidates: Vec::new(),
                    crash_at: Some(CrashPoint { stmt, occurrence }),
                    multi_shot: false,
                })
            }
            Mode::MetaExceptions => {
                // Exhaustion is a property of the queue, not of the armed
                // set: placeholder-only windows are (wasted) rounds, spent
                // exactly as the tool would have spent them.
                if self.exc_order.iter().all(|c| self.tried.contains(c)) {
                    None
                } else {
                    Some(InjectionPlan::window(self.plan_round(ctx, round)))
                }
            }
        }
    }

    fn feedback(&mut self, _ctx: &SearchContext, outcome: &RoundOutcome) {
        if self.mode == Mode::MetaExceptions {
            if let Some(rec) = &outcome.result.injected {
                self.tried
                    .insert((rec.candidate.site, rec.occurrence, rec.candidate.exc));
            } else {
                self.window = (self.window * 2).min(4_096);
            }
        }
    }

    fn drain_notes(&mut self) -> Vec<StrategyNote> {
        std::mem::take(&mut self.pending_notes)
    }
}
