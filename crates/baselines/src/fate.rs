//! A FATE-style comparator (§8.4).
//!
//! FATE [Gunawi et al., NSDI '11] assigns *failure IDs* to distinct fault
//! scenarios and explores new IDs first, prioritizing coverage over any
//! specific failure. Our adaptation: every fault site in the *whole
//! program* (no causal pruning) crossed with its declared exception types
//! forms the ID space; the occurrence dimension is explored breadth-first
//! (all sites at occurrence 0, then occurrence 1, …), which is exactly the
//! "cover new scenarios first" policy — and exactly wrong for failures
//! that need a *late* occurrence of an already-seen fault.

use std::collections::HashSet;

use anduril_core::{RoundOutcome, SearchContext, Strategy};
use anduril_ir::{ExceptionType, SiteId};
use anduril_sim::Candidate;

/// The FATE-style strategy.
#[derive(Debug)]
pub struct Fate {
    /// Candidates in breadth-first (occurrence-major) order.
    order: Vec<(SiteId, u32, ExceptionType)>,
    tried: HashSet<(SiteId, u32, ExceptionType)>,
    /// Candidates armed per round.
    pub window: usize,
}

impl Fate {
    /// Creates a FATE explorer with the default window.
    pub fn new() -> Self {
        Fate {
            order: Vec::new(),
            tried: HashSet::new(),
            window: 10,
        }
    }
}

impl Default for Fate {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Fate {
    fn name(&self) -> &'static str {
        "fate"
    }

    fn init(&mut self, ctx: &SearchContext) {
        self.order.clear();
        self.tried.clear();
        let program = &ctx.scenario.program;
        let max_occ = ctx.site_instances.iter().map(Vec::len).max().unwrap_or(1) as u32;
        // Breadth-first over occurrences: every distinct failure ID (site ×
        // exception) at occurrence o before any ID at occurrence o+1. The
        // ID space is the statically reachable sites — no causal pruning,
        // but dead code is excluded for every strategy alike.
        for occ in 0..max_occ.max(1) {
            for &sid in &ctx.candidate_sites {
                let site = &program.sites[sid.index()];
                if (occ as usize) < ctx.site_instances[sid.index()].len().max(1) {
                    for &exc in &site.exceptions {
                        self.order.push((sid, occ, exc));
                    }
                }
            }
        }
    }

    fn plan_round(&mut self, _ctx: &SearchContext, _round: usize) -> Vec<Candidate> {
        self.order
            .iter()
            .filter(|c| !self.tried.contains(c))
            .take(self.window)
            .map(|&(site, occ, exc)| Candidate {
                site,
                occurrence: Some(occ),
                exc,
                stack: None,
            })
            .collect()
    }

    fn feedback(&mut self, _ctx: &SearchContext, outcome: &RoundOutcome) {
        if let Some(rec) = &outcome.result.injected {
            self.tried
                .insert((rec.candidate.site, rec.occurrence, rec.candidate.exc));
        } else {
            self.window = (self.window * 2).min(4_096);
        }
    }
}
