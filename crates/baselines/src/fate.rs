//! A FATE-style comparator (§8.4).
//!
//! FATE [Gunawi et al., NSDI '11] assigns *failure IDs* to distinct fault
//! scenarios and explores new IDs first, prioritizing coverage over any
//! specific failure. Our adaptation: every fault site in the *whole
//! program* (no causal pruning) crossed with its declared exception types
//! forms the ID space; the occurrence dimension is explored breadth-first
//! (all sites at occurrence 0, then occurrence 1, …), which is exactly the
//! "cover new scenarios first" policy — and exactly wrong for failures
//! that need a *late* occurrence of an already-seen fault.

use std::collections::HashSet;

use anduril_core::{RoundOutcome, SearchContext, Strategy, StrategyNote};
use anduril_ir::{ExceptionType, SiteId};
use anduril_sim::Candidate;

/// The FATE-style strategy.
#[derive(Debug)]
pub struct Fate {
    /// Candidates in breadth-first (occurrence-major) order.
    order: Vec<(SiteId, u32, ExceptionType)>,
    tried: HashSet<(SiteId, u32, ExceptionType)>,
    /// Candidates armed per round.
    pub window: usize,
    pending_notes: Vec<StrategyNote>,
}

impl Fate {
    /// Creates a FATE explorer with the default window.
    pub fn new() -> Self {
        Fate {
            order: Vec::new(),
            tried: HashSet::new(),
            window: 10,
            pending_notes: Vec::new(),
        }
    }
}

impl Default for Fate {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Fate {
    fn name(&self) -> &'static str {
        "fate"
    }

    fn init(&mut self, ctx: &SearchContext) {
        self.order.clear();
        self.tried.clear();
        self.pending_notes.clear();
        let program = &ctx.scenario.program;
        let max_occ = ctx.site_instances.iter().map(Vec::len).max().unwrap_or(1) as u32;
        // Breadth-first over occurrences: every distinct failure ID (site ×
        // exception) at occurrence o before any ID at occurrence o+1.
        let mut bound_pruned = 0usize;
        for occ in 0..max_occ.max(1) {
            for &sid in &ctx.candidate_sites {
                let site = &program.sites[sid.index()];
                if (occ as usize) < ctx.site_instances[sid.index()].len().max(1) {
                    if !ctx.occurrence_feasible(sid, Some(occ)) {
                        bound_pruned += site.exceptions.len();
                    }
                    for &exc in &site.exceptions {
                        self.order.push((sid, occ, exc));
                    }
                }
            }
        }
        if bound_pruned > 0 {
            self.pending_notes.push(StrategyNote::BoundPruned {
                count: bound_pruned,
            });
        }
    }

    fn plan_round(&mut self, ctx: &SearchContext, _round: usize) -> Vec<Candidate> {
        // Infeasible IDs stay in the queue as window placeholders — the
        // tool's pacing is part of what we compare against — but are never
        // actually armed: a plan past the static occurrence bound cannot
        // fire, so arming it would only pretend to spend the slot.
        self.order
            .iter()
            .filter(|c| !self.tried.contains(c))
            .take(self.window)
            .filter(|&&(site, occ, _)| ctx.occurrence_feasible(site, Some(occ)))
            .map(|&(site, occ, exc)| Candidate {
                site,
                occurrence: Some(occ),
                exc,
                stack: None,
            })
            .collect()
    }

    fn plan_injection(
        &mut self,
        ctx: &SearchContext,
        round: usize,
    ) -> Option<anduril_sim::InjectionPlan> {
        // Exhaustion is a property of the queue, not of the armed set: a
        // window of placeholder-only entries is a (wasted) round, exactly
        // as the tool would have spent it.
        if self.order.iter().all(|c| self.tried.contains(c)) {
            return None;
        }
        Some(anduril_sim::InjectionPlan::window(
            self.plan_round(ctx, round),
        ))
    }

    fn feedback(&mut self, _ctx: &SearchContext, outcome: &RoundOutcome) {
        if let Some(rec) = &outcome.result.injected {
            self.tried
                .insert((rec.candidate.site, rec.occurrence, rec.candidate.exc));
        } else {
            self.window = (self.window * 2).min(4_096);
        }
    }

    fn drain_notes(&mut self) -> Vec<StrategyNote> {
        std::mem::take(&mut self.pending_notes)
    }
}
