//! The stacktrace-injector baseline (§8.4).
//!
//! Extracts every warning/error record in the failure log that carries a
//! throwable, and injects only at fault sites inside the innermost stack
//! frame, guarded on the runtime stack matching the logged one. Performs
//! well when the failure log is clean and the root-cause fault is logged
//! with its stack; fails when the root cause never reached a log, and
//! wastes rounds when the logged site executes frequently.

use std::collections::HashSet;

use anduril_core::{RoundOutcome, SearchContext, Strategy, StrategyNote};
use anduril_ir::{ExceptionType, FuncId, Level, SiteId};
use anduril_sim::Candidate;

/// One extracted `(site, stack)` injection target.
#[derive(Debug, Clone)]
struct Target {
    site: SiteId,
    exc: ExceptionType,
    stack: Vec<FuncId>,
    next_occ: u32,
    max_occ: u32,
}

/// The stacktrace-injector strategy.
#[derive(Debug, Default)]
pub struct StacktraceInjector {
    targets: Vec<Target>,
    tried: HashSet<(SiteId, u32)>,
    pending_notes: Vec<StrategyNote>,
}

impl StacktraceInjector {
    /// Creates an empty injector; targets are extracted in `init`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of static targets extracted from the failure log.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }
}

impl Strategy for StacktraceInjector {
    fn name(&self) -> &'static str {
        "stacktrace-injector"
    }

    fn init(&mut self, ctx: &SearchContext) {
        self.targets.clear();
        self.tried.clear();
        self.pending_notes.clear();
        let mut bound_pruned = 0usize;
        let program = &ctx.scenario.program;
        let mut seen: HashSet<(SiteId, Vec<FuncId>)> = HashSet::new();
        for entry in &ctx.failure {
            if entry.level < Level::Warn || entry.stack.is_empty() {
                continue;
            }
            // Parse the exception class from the rendered throwable line.
            let exc = entry
                .exc
                .as_deref()
                .and_then(|e| ExceptionType::parse(e.split(':').next().unwrap_or(e)));
            let Some(exc) = exc else { continue };
            // Resolve logged frame names to function ids (innermost first).
            let stack: Vec<FuncId> = entry
                .stack
                .iter()
                .filter_map(|f| program.func_named(f))
                .collect();
            let Some(&innermost) = stack.first() else {
                continue;
            };
            // Candidate sites: reachable fault sites inside the innermost
            // frame that can throw the logged exception type.
            for &sid in &ctx.candidate_sites {
                let site = &program.sites[sid.index()];
                if site.func == innermost && site.exceptions.contains(&exc) {
                    let key = (sid, stack.clone());
                    if seen.insert(key) {
                        // Cap the occurrence sweep at the static bound: slots
                        // past `hi` can never fire, so trying them only burns
                        // rounds. A dead site (`hi == 0`) contributes nothing.
                        let dyn_occ = ctx.site_instances[sid.index()].len().max(1) as u32;
                        let max_occ = match ctx.site_bound(sid).hi {
                            Some(h) => dyn_occ.min(h.min(u64::from(u32::MAX)) as u32),
                            None => dyn_occ,
                        };
                        bound_pruned += (dyn_occ - max_occ) as usize;
                        self.targets.push(Target {
                            site: sid,
                            exc,
                            stack: stack.clone(),
                            next_occ: 0,
                            max_occ,
                        });
                    }
                }
            }
        }
        self.targets.sort_by_key(|t| t.site);
        if bound_pruned > 0 {
            self.pending_notes.push(StrategyNote::BoundPruned {
                count: bound_pruned,
            });
        }
    }

    fn drain_notes(&mut self) -> Vec<StrategyNote> {
        std::mem::take(&mut self.pending_notes)
    }

    fn plan_round(&mut self, _ctx: &SearchContext, _round: usize) -> Vec<Candidate> {
        // Arm every target at its next untried occurrence, stack-guarded.
        let mut out = Vec::new();
        for t in &self.targets {
            if t.next_occ < t.max_occ {
                out.push(Candidate {
                    site: t.site,
                    occurrence: Some(t.next_occ),
                    exc: t.exc,
                    stack: Some(t.stack.clone()),
                });
            }
        }
        out
    }

    fn feedback(&mut self, _ctx: &SearchContext, outcome: &RoundOutcome) {
        match &outcome.result.injected {
            Some(rec) => {
                for t in &mut self.targets {
                    if t.site == rec.candidate.site && t.next_occ == rec.occurrence {
                        t.next_occ += 1;
                    }
                }
            }
            None => {
                // Nothing in this round's plan occurred: advance every
                // target so the search makes progress.
                for t in &mut self.targets {
                    if t.next_occ < t.max_occ {
                        t.next_occ += 1;
                    }
                }
            }
        }
    }
}
