//! Unit-level behaviour of the baseline strategies on a controlled
//! scenario.

use anduril_baselines::{table2_strategies, CrashTuner, Fate, StacktraceInjector};
use anduril_core::{Oracle, RoundOutcome, Scenario, SearchContext, Strategy};
use anduril_ir::builder::ProgramBuilder;
use anduril_ir::expr::build as e;
use anduril_ir::{ExceptionType, Level, Value};
use anduril_sim::{InjectionPlan, NodeSpec, SimConfig, Topology};

/// A scenario with one logged-with-stack fault path, one silent fault
/// path, and one meta-info-adjacent fault path.
fn scenario() -> (Scenario, anduril_ir::SiteId, anduril_ir::SiteId) {
    let mut pb = ProgramBuilder::new("baseline-unit");
    let leader = pb.meta_global("leader", Value::str("n1"));
    let failed = pb.global("failed", Value::Bool(false));
    let logged_site = std::cell::Cell::new(anduril_ir::SiteId(0));
    let silent_site = std::cell::Cell::new(anduril_ir::SiteId(0));
    let logged_op = pb.declare("loggedOp", 0);
    let silent_op = pb.declare("silentOp", 0);
    let main = pb.declare("main", 0);
    pb.body(logged_op, |b| {
        b.try_catch(
            |b| {
                logged_site.set(b.external("logged.op", &[ExceptionType::Io]));
            },
            ExceptionType::Io,
            |b| {
                // Logs the throwable with its stack.
                b.log_exc(Level::Warn, "logged op failed", vec![]);
                b.set_global(failed, e::bool_(true));
            },
        );
    });
    pb.body(silent_op, |b| {
        b.try_catch(
            |b| {
                silent_site.set(b.external("silent.op", &[ExceptionType::Io]));
            },
            ExceptionType::Io,
            |b| {
                // Message only, no stack.
                b.log(Level::Warn, "silent op failed", vec![]);
                b.set_global(failed, e::bool_(true));
            },
        );
    });
    pb.body(main, |b| {
        b.set_global(leader, e::self_node());
        let i = b.local();
        b.assign(i, e::int(0));
        b.while_(e::lt(e::var(i), e::int(6)), |b| {
            b.call(logged_op, vec![]);
            b.call(silent_op, vec![]);
            b.sleep(e::rand(2, 8));
            b.assign(i, e::add(e::var(i), e::int(1)));
        });
        b.log(Level::Info, "done", vec![]);
    });
    let program = pb.finish().unwrap();
    let topo = Topology::new(vec![NodeSpec::new(
        "n1",
        program.func_named("main").unwrap(),
        vec![],
    )]);
    (
        Scenario {
            name: "baseline-unit".into(),
            program,
            topology: topo,
            config: SimConfig::default(),
        },
        logged_site.get(),
        silent_site.get(),
    )
}

fn ctx_for(root: anduril_ir::SiteId, scenario: &Scenario) -> SearchContext {
    let failure = scenario
        .run(999, InjectionPlan::exact(root, 3, ExceptionType::Io))
        .unwrap();
    SearchContext::prepare(scenario.clone(), &failure.log_text(), 1_000).unwrap()
}

#[test]
fn stacktrace_injector_extracts_only_stacked_throwables() {
    let (scenario, logged, silent) = scenario();
    // Failure caused by the *logged* path: the injector finds a target.
    let ctx = ctx_for(logged, &scenario);
    let mut st = StacktraceInjector::new();
    st.init(&ctx);
    assert!(st.target_count() >= 1);
    let plan = st.plan_round(&ctx, 0);
    assert!(plan.iter().all(|c| c.site == logged));
    assert!(plan.iter().all(|c| c.stack.is_some()));

    // Failure caused by the *silent* path: nothing to extract for it.
    let ctx = ctx_for(silent, &scenario);
    let mut st = StacktraceInjector::new();
    st.init(&ctx);
    let plan = st.plan_round(&ctx, 0);
    assert!(
        plan.iter().all(|c| c.site != silent),
        "the silent site has no logged stack to target"
    );
}

#[test]
fn fate_explores_occurrences_breadth_first() {
    let (scenario, logged, _) = scenario();
    let ctx = ctx_for(logged, &scenario);
    let mut fate = Fate::new();
    fate.init(&ctx);
    let plan = fate.plan_round(&ctx, 0);
    assert!(!plan.is_empty());
    // Breadth-first: occurrences are non-decreasing through the window
    // (every site's occurrence 0 precedes any occurrence 1, and so on).
    let occs: Vec<u32> = plan.iter().filter_map(|c| c.occurrence).collect();
    assert!(occs.windows(2).all(|w| w[0] <= w[1]), "order: {occs:?}");
    assert_eq!(occs[0], 0);
    // Feedback on an injected round removes the candidate.
    let result = ctx
        .scenario
        .run(1_001, InjectionPlan::window(plan.clone()))
        .unwrap();
    assert!(result.injected.is_some());
    let outcome = RoundOutcome::new(&ctx, result);
    fate.feedback(&ctx, &outcome);
    let next = fate.plan_round(&ctx, 1);
    let injected = outcome.result.injected.as_ref().unwrap();
    assert!(!next.iter().any(|c| {
        c.site == injected.candidate.site && c.occurrence == Some(injected.occurrence)
    }));
}

#[test]
fn crashtuner_crash_mode_emits_crash_plans() {
    let (scenario, logged, _) = scenario();
    let ctx = ctx_for(logged, &scenario);
    let mut ct = CrashTuner::crashes();
    ct.init(&ctx);
    let plan = ct.plan_injection(&ctx, 0).expect("a crash plan");
    assert!(plan.candidates.is_empty());
    assert!(plan.crash_at.is_some());
    // The crash plan actually crashes the node when run.
    let r = ctx.scenario.run(1_001, plan).unwrap();
    assert!(r.crashed);
    assert!(r.has_log("Node n1 crashed"));
    assert!(!r.node_alive("n1"));
}

#[test]
fn crashtuner_queue_is_finite() {
    let (scenario, logged, _) = scenario();
    let ctx = ctx_for(logged, &scenario);
    let mut ct = CrashTuner::crashes();
    ct.init(&ctx);
    let mut rounds = 0;
    while ct.plan_injection(&ctx, rounds).is_some() {
        rounds += 1;
        assert!(rounds < 10_000, "crash queue never exhausts");
    }
    assert!(rounds > 0);
}

#[test]
fn table2_strategy_registry_is_complete() {
    let names: Vec<&str> = table2_strategies().iter().map(|(n, _)| *n).collect();
    assert_eq!(names.len(), 9);
    assert_eq!(names[0], "full-feedback");
    assert!(names.contains(&"exhaustive"));
    assert!(names.contains(&"fate"));
    assert!(names.contains(&"crashtuner"));
    // Names are unique and match the strategy's own name().
    for (name, strategy) in table2_strategies() {
        assert_eq!(name, strategy.name());
    }
}

#[test]
fn all_external_strategies_terminate_on_unsatisfiable_oracles() {
    let (scenario, logged, _) = scenario();
    let ctx = ctx_for(logged, &scenario);
    let oracle = Oracle::LogContains("never happens".into());
    let cfg = anduril_core::ExplorerConfig {
        max_rounds: 5_000,
        ..anduril_core::ExplorerConfig::default()
    };
    for mut strategy in [
        Box::new(StacktraceInjector::new()) as Box<dyn Strategy>,
        Box::new(Fate::new()),
        Box::new(CrashTuner::crashes()),
        Box::new(CrashTuner::meta_exceptions()),
    ] {
        let r = anduril_core::explore(&ctx, &oracle, strategy.as_mut(), &cfg, None).unwrap();
        assert!(!r.success);
        assert!(
            r.rounds < 5_000,
            "{} did not terminate on its own",
            r.strategy
        );
    }
}
