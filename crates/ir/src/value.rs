//! Runtime values manipulated by IR programs.

use std::sync::Arc;

use crate::exception::ExcValue;

/// A dynamically typed runtime value.
///
/// The IR is untyped at the statement level; the interpreter coerces values
/// where a specific type is required (e.g. a boolean condition) and treats
/// ill-typed operations as interpreter errors rather than silent wrap-around.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The unit value, also used as the "absent" sentinel (e.g. popping an
    /// empty queue).
    Unit,
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable interned string.
    Str(Arc<str>),
    /// A list, used both as a sequence and as a tuple for message payloads.
    List(Vec<Value>),
    /// A handle to a pending asynchronous task result.
    Future(u64),
    /// A first-class exception value (as caught and rethrown by handlers).
    Exc(Arc<ExcValue>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Returns the value as a boolean, or `None` if it is not one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an integer, or `None` if it is not one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns `true` if this value is the unit sentinel.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Returns `true` if the value is an empty list or string (`false`
    /// for every other value).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Returns the length of a list or string, or `None` for other values.
    pub fn len(&self) -> Option<i64> {
        match self {
            Value::List(v) => Some(v.len() as i64),
            Value::Str(s) => Some(s.len() as i64),
            _ => None,
        }
    }

    /// Renders the value for inclusion in a log message.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Appends the rendering of the value to `out` without any intermediate
    /// allocation. `render` is defined in terms of this, so both produce
    /// byte-identical text.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Unit => out.push_str("()"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => out.push_str(s),
            Value::List(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Future(id) => {
                let _ = write!(out, "future#{id}");
            }
            Value::Exc(e) => out.push_str(&e.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_human_readable() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::str("x").render(), "x");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(true)]).render(),
            "[1, true]"
        );
        assert_eq!(Value::Unit.render(), "()");
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_bool(), None);
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::List(vec![Value::Unit]).len(), Some(1));
        assert!(Value::Unit.is_unit());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }
}
