//! Statement-level program IR over which ANDURIL's analyses run.
//!
//! The paper's ANDURIL instruments JVM bytecode through the Soot framework.
//! This reproduction substitutes a compact, analyzable intermediate
//! representation: target distributed systems are *authored* in this IR
//! (see `anduril-targets`), the static causal analysis (`anduril-causal`)
//! consumes it, and the deterministic simulator (`anduril-sim`) interprets
//! it. The IR deliberately models exactly the constructs the paper's causal
//! graph reasons about:
//!
//! - plain locations (logging, assignment),
//! - conditions (`if` / `while`),
//! - invocations (calls, async task submission, thread spawn),
//! - exception handlers (`try`/`catch`/`finally`),
//! - `throw new` statements (new-exception fault sites),
//! - external library/IO calls (external-exception fault sites),
//! - cross-thread exception propagation through future semantics
//!   ([`Stmt::Submit`] / [`Stmt::Await`]).
//!
//! # Examples
//!
//! ```
//! use anduril_ir::builder::ProgramBuilder;
//! use anduril_ir::expr as e;
//! use anduril_ir::{ExceptionType, Level, Value};
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let flag = pb.global("flag", Value::Bool(false));
//! let main = pb.declare("main", 0);
//! pb.body(main, |b| {
//!     b.try_catch(
//!         |b| {
//!             b.external("disk.write", &[ExceptionType::Io]);
//!             b.set_global(flag, e::bool_(true));
//!         },
//!         ExceptionType::Io,
//!         |b| {
//!             b.log(Level::Warn, "write failed, retrying", vec![]);
//!         },
//!     );
//! });
//! let program = pb.finish().unwrap();
//! assert_eq!(program.sites.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod exception;
pub mod expr;
pub mod ids;
pub mod log;
pub mod lower;
pub mod program;
pub mod stmt;
pub mod value;

pub use exception::{ExcValue, ExceptionPattern, ExceptionType};
pub use expr::{BinOp, Expr};
pub use ids::{
    BlockId, ChanId, CondId, ExecId, FuncId, GlobalId, SiteId, StmtRef, TemplateId, VarId,
};
pub use log::{Level, LogEntry, LogTemplate};
pub use lower::{CompiledProgram, Instr};
pub use program::{
    BlockRole, FaultSite, Function, GlobalInfo, IrError, LintWarning, Program, SiteKind,
};
pub use stmt::{Handler, Stmt};
pub use value::Value;
