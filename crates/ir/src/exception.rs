//! Exception types, runtime exception values, and catch patterns.
//!
//! The paper targets systems that "capture faults as exceptions"; faults are
//! injected by throwing the relevant exception at a fault site. This module
//! defines the closed set of exception types our targets use (mirroring the
//! exception types in the paper's Table 5) plus the runtime exception value
//! that carries provenance: the originating fault site, a wrapped inner
//! exception (for `ExecutionException`-style cross-thread propagation), and
//! the call stack at the throw point (used by the stacktrace-injector
//! baseline).

use crate::ids::{FuncId, SiteId};

/// The closed set of exception types thrown by IR programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExceptionType {
    /// Generic I/O failure (`IOException`).
    Io,
    /// Network socket failure (`SocketException`).
    Socket,
    /// An operation timed out (`TimeoutIOException`).
    Timeout,
    /// A blocked operation was interrupted (`InterruptedException`).
    Interrupted,
    /// A file was missing (`FileNotFoundException`).
    FileNotFound,
    /// A waited-on asynchronous task failed (`ExecutionException`); wraps
    /// the task's own exception.
    Execution,
    /// An internal invariant was violated (`IllegalStateException`).
    IllegalState,
    /// Catch-all runtime error (`RuntimeException`, used for NPE analogs).
    Runtime,
    /// On-disk or on-wire data was corrupt (`CorruptionException`).
    Corruption,
}

impl ExceptionType {
    /// All exception types, for enumeration in tests and analyses.
    pub const ALL: [ExceptionType; 9] = [
        ExceptionType::Io,
        ExceptionType::Socket,
        ExceptionType::Timeout,
        ExceptionType::Interrupted,
        ExceptionType::FileNotFound,
        ExceptionType::Execution,
        ExceptionType::IllegalState,
        ExceptionType::Runtime,
        ExceptionType::Corruption,
    ];

    /// Returns the Java-style class name used when rendering log messages.
    pub fn name(self) -> &'static str {
        match self {
            ExceptionType::Io => "IOException",
            ExceptionType::Socket => "SocketException",
            ExceptionType::Timeout => "TimeoutIOException",
            ExceptionType::Interrupted => "InterruptedException",
            ExceptionType::FileNotFound => "FileNotFoundException",
            ExceptionType::Execution => "ExecutionException",
            ExceptionType::IllegalState => "IllegalStateException",
            ExceptionType::Runtime => "RuntimeException",
            ExceptionType::Corruption => "CorruptionException",
        }
    }

    /// Parses a Java-style class name back into an exception type.
    pub fn parse(name: &str) -> Option<Self> {
        ExceptionType::ALL
            .iter()
            .copied()
            .find(|t| t.name() == name)
    }
}

impl std::fmt::Display for ExceptionType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pattern in a `catch` clause selecting which exception types it handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExceptionPattern {
    /// Catches every exception (like `catch (Throwable t)`).
    Any,
    /// Catches exactly one type.
    Only(ExceptionType),
    /// Catches any of the listed types (multi-catch).
    OneOf(Vec<ExceptionType>),
}

impl ExceptionPattern {
    /// Returns `true` if the pattern catches the given exception type.
    pub fn matches(&self, ty: ExceptionType) -> bool {
        match self {
            ExceptionPattern::Any => true,
            ExceptionPattern::Only(t) => *t == ty,
            ExceptionPattern::OneOf(ts) => ts.contains(&ty),
        }
    }

    /// Enumerates the concrete types this pattern can catch.
    pub fn types(&self) -> Vec<ExceptionType> {
        match self {
            ExceptionPattern::Any => ExceptionType::ALL.to_vec(),
            ExceptionPattern::Only(t) => vec![*t],
            ExceptionPattern::OneOf(ts) => ts.clone(),
        }
    }
}

impl From<ExceptionType> for ExceptionPattern {
    fn from(t: ExceptionType) -> Self {
        ExceptionPattern::Only(t)
    }
}

/// A runtime exception value with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcValue {
    /// The exception's type.
    pub ty: ExceptionType,
    /// A wrapped inner exception (e.g. the task failure inside an
    /// `ExecutionException`).
    pub inner: Option<Box<ExcValue>>,
    /// The fault site where the exception originated, if it came from a
    /// traced site (injected or organic).
    pub origin_site: Option<SiteId>,
    /// `true` if the exception was thrown by the fault-injection runtime
    /// rather than by program logic.
    pub injected: bool,
    /// Function call stack (innermost first) at the throw point.
    pub stack: Vec<FuncId>,
}

impl ExcValue {
    /// Creates an exception with no inner cause and no provenance.
    pub fn new(ty: ExceptionType) -> Self {
        Self {
            ty,
            inner: None,
            origin_site: None,
            injected: false,
            stack: Vec::new(),
        }
    }

    /// Wraps another exception (for `ExecutionException` semantics).
    pub fn wrapping(ty: ExceptionType, inner: ExcValue) -> Self {
        Self {
            ty,
            inner: Some(Box::new(inner)),
            origin_site: None,
            injected: false,
            stack: Vec::new(),
        }
    }

    /// Returns the innermost (root-cause) exception in the wrap chain.
    pub fn root(&self) -> &ExcValue {
        match &self.inner {
            Some(i) => i.root(),
            None => self,
        }
    }

    /// Renders a compact `Type(cause...)` form for log messages.
    pub fn render(&self) -> String {
        match &self.inner {
            Some(i) => format!("{}: caused by {}", self.ty.name(), i.render()),
            None => self.ty.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for ty in ExceptionType::ALL {
            assert_eq!(ExceptionType::parse(ty.name()), Some(ty));
        }
        assert_eq!(ExceptionType::parse("NoSuchException"), None);
    }

    #[test]
    fn pattern_matching() {
        assert!(ExceptionPattern::Any.matches(ExceptionType::Io));
        assert!(ExceptionPattern::Only(ExceptionType::Io).matches(ExceptionType::Io));
        assert!(!ExceptionPattern::Only(ExceptionType::Io).matches(ExceptionType::Socket));
        let multi = ExceptionPattern::OneOf(vec![ExceptionType::Io, ExceptionType::Timeout]);
        assert!(multi.matches(ExceptionType::Timeout));
        assert!(!multi.matches(ExceptionType::Runtime));
    }

    #[test]
    fn wrap_chain_root() {
        let root = ExcValue::new(ExceptionType::Io);
        let wrapped = ExcValue::wrapping(ExceptionType::Execution, root.clone());
        assert_eq!(wrapped.root().ty, ExceptionType::Io);
        assert_eq!(
            wrapped.render(),
            "ExecutionException: caused by IOException"
        );
    }

    #[test]
    fn pattern_types_enumeration() {
        assert_eq!(
            ExceptionPattern::Any.types().len(),
            ExceptionType::ALL.len()
        );
        assert_eq!(
            ExceptionPattern::Only(ExceptionType::Socket).types(),
            vec![ExceptionType::Socket]
        );
    }
}
