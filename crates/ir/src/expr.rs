//! Side-effect-free expressions and builder helpers.
//!
//! Expressions read locals and per-node globals but never mutate state or
//! block; all effects (assignment, I/O, messaging) are statements. This
//! keeps the slicing analysis in `anduril-causal` simple: the variables an
//! expression *reads* are syntactically enumerable via [`Expr::reads`].

use crate::ids::{GlobalId, VarId};
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer remainder.
    Rem,
    /// Less-than on integers.
    Lt,
    /// Less-or-equal on integers.
    Le,
    /// Greater-than on integers.
    Gt,
    /// Greater-or-equal on integers.
    Ge,
    /// Structural equality on any values.
    Eq,
    /// Structural inequality on any values.
    Ne,
    /// Short-circuit boolean and.
    And,
    /// Short-circuit boolean or.
    Or,
}

/// A side-effect-free expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// Read of a function-local variable.
    Var(VarId),
    /// Read of a per-node global variable.
    Global(GlobalId),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Length of a list or string value.
    Len(Box<Expr>),
    /// List construction (used for message payloads / tuples).
    List(Vec<Expr>),
    /// Indexing into a list value.
    Index(Box<Expr>, u32),
    /// A deterministic pseudo-random integer in `[lo, hi)`, drawn from the
    /// simulation's seeded generator (used by workloads for timing jitter).
    RandRange(i64, i64),
    /// The name of the node evaluating the expression, as a string value.
    SelfNode,
}

impl Default for Expr {
    fn default() -> Self {
        Expr::Const(Value::Unit)
    }
}

impl Expr {
    /// Collects every local variable and global this expression reads.
    ///
    /// Used by the slicing ("jumping") analysis to find the program points
    /// that could satisfy a condition.
    pub fn reads(&self, vars: &mut Vec<VarId>, globals: &mut Vec<GlobalId>) {
        match self {
            Expr::Const(_) | Expr::RandRange(..) | Expr::SelfNode => {}
            Expr::Var(v) => vars.push(*v),
            Expr::Global(g) => globals.push(*g),
            Expr::Bin(_, a, b) => {
                a.reads(vars, globals);
                b.reads(vars, globals);
            }
            Expr::Not(a) | Expr::Len(a) => a.reads(vars, globals),
            Expr::List(items) => {
                for item in items {
                    item.reads(vars, globals);
                }
            }
            Expr::Index(a, _) => a.reads(vars, globals),
        }
    }

    /// Convenience form of [`Expr::reads`] returning fresh vectors.
    pub fn reads_collected(&self) -> (Vec<VarId>, Vec<GlobalId>) {
        let mut vars = Vec::new();
        let mut globals = Vec::new();
        self.reads(&mut vars, &mut globals);
        (vars, globals)
    }
}

pub use build::*;

/// Convenience constructors for [`Expr`]; intended to be used as
/// `use anduril_ir::expr as e;` followed by `e::gt(e::glob(x), e::int(3))`.
pub mod build {
    use super::*;

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Boolean literal.
    pub fn bool_(v: bool) -> Expr {
        Expr::Const(Value::Bool(v))
    }

    /// String literal.
    pub fn str_(v: &str) -> Expr {
        Expr::Const(Value::str(v))
    }

    /// Unit literal.
    pub fn unit() -> Expr {
        Expr::Const(Value::Unit)
    }

    /// Local variable read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Global variable read.
    pub fn glob(g: GlobalId) -> Expr {
        Expr::Global(g)
    }

    /// List-or-string length.
    pub fn len(e: Expr) -> Expr {
        Expr::Len(Box::new(e))
    }

    /// List construction.
    pub fn list(items: Vec<Expr>) -> Expr {
        Expr::List(items)
    }

    /// List indexing.
    pub fn index(e: Expr, i: u32) -> Expr {
        Expr::Index(Box::new(e), i)
    }

    /// Deterministic random integer in `[lo, hi)`.
    pub fn rand(lo: i64, hi: i64) -> Expr {
        Expr::RandRange(lo, hi)
    }

    /// The current node's name.
    pub fn self_node() -> Expr {
        Expr::SelfNode
    }

    macro_rules! binop {
        ($(#[$doc:meta])* $name:ident, $op:ident) => {
            $(#[$doc])*
            pub fn $name(a: Expr, b: Expr) -> Expr {
                Expr::Bin(BinOp::$op, Box::new(a), Box::new(b))
            }
        };
    }

    binop!(
        /// `a + b`.
        add, Add
    );
    binop!(
        /// `a - b`.
        sub, Sub
    );
    binop!(
        /// `a * b`.
        mul, Mul
    );
    binop!(
        /// `a % b`.
        rem, Rem
    );
    binop!(
        /// `a < b`.
        lt, Lt
    );
    binop!(
        /// `a <= b`.
        le, Le
    );
    binop!(
        /// `a > b`.
        gt, Gt
    );
    binop!(
        /// `a >= b`.
        ge, Ge
    );
    binop!(
        /// `a == b`.
        eq, Eq
    );
    binop!(
        /// `a != b`.
        ne, Ne
    );
    binop!(
        /// `a && b`.
        and, And
    );
    binop!(
        /// `a || b`.
        or, Or
    );

    /// `!a`.
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::build as e;
    use super::*;

    #[test]
    fn reads_collects_vars_and_globals() {
        let expr = e::and(
            e::gt(e::var(VarId(1)), e::int(3)),
            e::eq(e::glob(GlobalId(2)), e::len(e::glob(GlobalId(5)))),
        );
        let mut vars = Vec::new();
        let mut globals = Vec::new();
        expr.reads(&mut vars, &mut globals);
        assert_eq!(vars, vec![VarId(1)]);
        assert_eq!(globals, vec![GlobalId(2), GlobalId(5)]);
    }

    #[test]
    fn constants_read_nothing() {
        let mut vars = Vec::new();
        let mut globals = Vec::new();
        e::list(vec![e::int(1), e::str_("x"), e::rand(0, 5)]).reads(&mut vars, &mut globals);
        assert!(vars.is_empty());
        assert!(globals.is_empty());
    }
}
