//! Log templates and structured log entries.
//!
//! Log messages are the paper's *observables*: lightweight signals of a
//! distributed node's state-machine transitions. Programs log through
//! templates (format strings with `{}` holes); the simulator records
//! structured [`LogEntry`] values and can render them to Log4j-style text.
//! The Explorer consumes the *production* failure log only as text, through
//! the parser in `anduril-logdiff`, exactly as the paper's tool does.

use std::sync::Arc;

use crate::ids::{StmtRef, TemplateId};

/// Log severity, mirroring the levels of common Java logging frameworks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operational messages.
    Info,
    /// Handled-but-suspicious conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// Returns the upper-case name used in rendered log lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Parses a rendered level name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "DEBUG" => Some(Level::Debug),
            "INFO" => Some(Level::Info),
            "WARN" => Some(Level::Warn),
            "ERROR" => Some(Level::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A log message template: literal text with `{}` argument holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogTemplate {
    /// The template text, e.g. `"Failed to sync {} entries"`.
    pub text: String,
}

impl LogTemplate {
    /// Number of `{}` holes in the template.
    pub fn arity(&self) -> usize {
        self.text.matches("{}").count()
    }

    /// Renders the template with the given already-rendered arguments.
    ///
    /// Extra arguments are ignored; missing ones render as `?`.
    pub fn render(&self, args: &[String]) -> String {
        let mut out = String::with_capacity(self.text.len() + 16);
        let mut rest = self.text.as_str();
        let mut i = 0;
        while let Some(pos) = rest.find("{}") {
            out.push_str(&rest[..pos]);
            out.push_str(args.get(i).map(String::as_str).unwrap_or("?"));
            rest = &rest[pos + 2..];
            i += 1;
        }
        out.push_str(rest);
        out
    }

    /// Returns `true` if `body` could have been rendered from this template.
    ///
    /// Matching is anchored: the literal fragments between holes must appear
    /// in order, starting at the beginning and ending at the end of `body`.
    pub fn matches(&self, body: &str) -> bool {
        let mut rest = body;
        let mut fragments = self.text.split("{}").peekable();
        let mut first = true;
        while let Some(frag) = fragments.next() {
            let last = fragments.peek().is_none();
            if first {
                if let Some(r) = rest.strip_prefix(frag) {
                    rest = r;
                } else {
                    return false;
                }
                first = false;
            } else if last {
                if frag.is_empty() {
                    return true;
                }
                if let Some(pos) = rest.rfind(frag) {
                    return pos + frag.len() == rest.len();
                }
                return false;
            } else {
                if frag.is_empty() {
                    continue;
                }
                match rest.find(frag) {
                    Some(pos) => rest = &rest[pos + frag.len()..],
                    None => return false,
                }
            }
        }
        rest.is_empty()
    }
}

/// A structured log entry captured during simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Logical time at which the entry was emitted.
    pub time: u64,
    /// Name of the emitting node. Interned: the simulator shares one
    /// allocation per node across every entry it emits, so recording an
    /// entry costs two refcount bumps instead of two string clones.
    pub node: Arc<str>,
    /// Name of the emitting thread (interned like [`LogEntry::node`]).
    pub thread: Arc<str>,
    /// Severity.
    pub level: Level,
    /// The template the entry was rendered from.
    pub template: TemplateId,
    /// The statement that emitted it.
    pub stmt: StmtRef,
    /// The rendered message body (template with arguments substituted).
    /// Interned so cloning an entry (snapshot capture/restore, result
    /// copies) bumps a refcount instead of reallocating the text.
    pub body: Arc<str>,
    /// Rendered class name of an attached throwable (e.g. `IOException`),
    /// when the logging call attached one.
    pub exc: Option<String>,
    /// Stack-trace lines (function names, innermost first) of the attached
    /// throwable.
    pub stack: Vec<String>,
}

impl LogEntry {
    /// Renders the entry as a Log4j-style text line (plus the attached
    /// throwable and its indented `at` lines, if any).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{:08} [{}:{}] {} - {}",
            self.time, self.node, self.thread, self.level, self.body
        );
        if let Some(exc) = &self.exc {
            line.push('\n');
            line.push_str(exc);
        }
        for frame in &self.stack {
            line.push_str("\n\tat ");
            line.push_str(frame);
        }
        line
    }
}

/// Renders a full log as text, one entry (possibly multi-line) per record.
pub fn render_log(entries: &[LogEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpl(s: &str) -> LogTemplate {
        LogTemplate {
            text: s.to_string(),
        }
    }

    #[test]
    fn arity_counts_holes() {
        assert_eq!(tmpl("no holes").arity(), 0);
        assert_eq!(tmpl("a {} b {}").arity(), 2);
    }

    #[test]
    fn render_substitutes_in_order() {
        let t = tmpl("sync {} of {} entries");
        assert_eq!(
            t.render(&["3".to_string(), "10".to_string()]),
            "sync 3 of 10 entries"
        );
        assert_eq!(t.render(&["3".to_string()]), "sync 3 of ? entries");
    }

    #[test]
    fn matches_rendered_bodies() {
        let t = tmpl("sync {} of {} entries");
        assert!(t.matches("sync 3 of 10 entries"));
        assert!(t.matches(&t.render(&["a".into(), "b".into()])));
        assert!(!t.matches("sync 3 of 10 entriesX"));
        assert!(!t.matches("Xsync 3 of 10 entries"));
        assert!(!t.matches("something else"));
    }

    #[test]
    fn matches_hole_at_edges() {
        let t = tmpl("{} joined {}");
        assert!(t.matches("n1 joined quorum"));
        assert!(!t.matches("n1 left quorum"));
        let all_hole = tmpl("{}");
        assert!(all_hole.matches("anything at all"));
    }

    #[test]
    fn entry_render_includes_stack() {
        let e = LogEntry {
            time: 42,
            node: "nn1".into(),
            thread: "main".into(),
            level: Level::Warn,
            template: TemplateId(0),
            stmt: StmtRef::new(crate::ids::BlockId(0), 0),
            body: "boom".into(),
            exc: Some("IOException".into()),
            stack: vec!["write".into(), "flush".into()],
        };
        let text = e.render();
        assert!(text.starts_with("00000042 [nn1:main] WARN - boom"));
        assert!(text.contains("\nIOException"));
        assert!(text.contains("\n\tat write"));
        assert!(text.contains("\n\tat flush"));
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("TRACE"), None);
    }
}
