//! Fluent construction of IR programs.
//!
//! Target systems declare functions up front (allowing recursion and
//! forward references), then define bodies with nested closures:
//!
//! ```
//! use anduril_ir::builder::ProgramBuilder;
//! use anduril_ir::expr as e;
//! use anduril_ir::{ExceptionType, Level, Value};
//!
//! let mut pb = ProgramBuilder::new("wal");
//! let pending = pb.global("pending", Value::Int(0));
//! let sync = pb.declare("sync", 0);
//! let consume = pb.declare("consume", 0);
//! pb.body(sync, |b| {
//!     b.external("hdfs.write", &[ExceptionType::Io]);
//!     b.set_global(pending, e::int(0));
//! });
//! pb.body(consume, |b| {
//!     b.while_(e::gt(e::glob(pending), e::int(0)), |b| {
//!         b.call(sync, vec![]);
//!         b.log(Level::Info, "synced pending entries", vec![]);
//!     });
//! });
//! let program = pb.finish().unwrap();
//! assert_eq!(program.funcs.len(), 2);
//! ```

use std::collections::HashMap;

use crate::exception::{ExceptionPattern, ExceptionType};
use crate::expr::Expr;
use crate::ids::{
    BlockId, ChanId, CondId, ExecId, FuncId, GlobalId, SiteId, StmtRef, TemplateId, VarId,
};
use crate::log::{Level, LogTemplate};
use crate::program::{FaultSite, Function, GlobalInfo, IrError, Program, SiteKind};
use crate::stmt::{Handler, Stmt};
use crate::value::Value;

/// Template id of the runtime-emitted `Uncaught exception {} in thread {}`
/// message, present in every program.
pub const TMPL_UNCAUGHT: TemplateId = TemplateId(0);
/// Template id of the runtime-emitted `ABORT: node {} aborting: {}` message.
pub const TMPL_ABORT: TemplateId = TemplateId(1);
/// Template id of the runtime-emitted `Node {} crashed` message (used by the
/// CrashTuner baseline's crash injections).
pub const TMPL_NODE_CRASH: TemplateId = TemplateId(2);

/// Statement reference used for entries emitted by the runtime rather than
/// by a program statement.
pub const STMT_RUNTIME: StmtRef = StmtRef {
    block: BlockId(u32::MAX),
    idx: u32::MAX,
};

/// A boxed body-building closure, used by [`BodyBuilder::try_full`].
pub type BodyFn<'f> = Box<dyn FnOnce(&mut BodyBuilder<'_>) + 'f>;

/// Builds a [`Program`] incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    funcs: Vec<FunctionDraft>,
    blocks: Vec<Vec<Stmt>>,
    templates: Vec<LogTemplate>,
    template_index: HashMap<String, TemplateId>,
    sites: Vec<FaultSite>,
    globals: Vec<GlobalInfo>,
    conds: Vec<String>,
    chans: Vec<String>,
    execs: Vec<String>,
}

#[derive(Debug)]
struct FunctionDraft {
    name: String,
    params: u32,
    locals: u32,
    entry: Option<BlockId>,
}

impl ProgramBuilder {
    /// Creates an empty builder; the three runtime templates are interned
    /// at their fixed ids.
    pub fn new(name: &str) -> Self {
        let mut pb = ProgramBuilder {
            name: name.to_string(),
            funcs: Vec::new(),
            blocks: Vec::new(),
            templates: Vec::new(),
            template_index: HashMap::new(),
            sites: Vec::new(),
            globals: Vec::new(),
            conds: Vec::new(),
            chans: Vec::new(),
            execs: Vec::new(),
        };
        let uncaught = pb.intern_template("Uncaught exception {} in thread {}");
        let abort = pb.intern_template("ABORT: node {} aborting: {}");
        let crash = pb.intern_template("Node {} crashed");
        debug_assert_eq!(uncaught, TMPL_UNCAUGHT);
        debug_assert_eq!(abort, TMPL_ABORT);
        debug_assert_eq!(crash, TMPL_NODE_CRASH);
        pb
    }

    /// Declares a function with `params` parameters; its body is supplied
    /// later via [`ProgramBuilder::body`].
    pub fn declare(&mut self, name: &str, params: u32) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FunctionDraft {
            name: name.to_string(),
            params,
            locals: params,
            entry: None,
        });
        id
    }

    /// Declares a per-node global variable with an initial value.
    pub fn global(&mut self, name: &str, init: Value) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalInfo {
            name: name.to_string(),
            init,
            meta_info: false,
        });
        id
    }

    /// Declares a *meta-info* global (node membership / role state); the
    /// CrashTuner baseline injects crashes around accesses to these.
    pub fn meta_global(&mut self, name: &str, init: Value) -> GlobalId {
        let id = self.global(name, init);
        self.globals[id.index()].meta_info = true;
        id
    }

    /// Declares a per-node condition variable.
    pub fn cond(&mut self, name: &str) -> CondId {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(name.to_string());
        id
    }

    /// Declares a per-node message channel.
    pub fn chan(&mut self, name: &str) -> ChanId {
        let id = ChanId(self.chans.len() as u32);
        self.chans.push(name.to_string());
        id
    }

    /// Declares a per-node single-threaded executor.
    pub fn executor(&mut self, name: &str) -> ExecId {
        let id = ExecId(self.execs.len() as u32);
        self.execs.push(name.to_string());
        id
    }

    /// Defines the body of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn body(&mut self, func: FuncId, f: impl FnOnce(&mut BodyBuilder<'_>)) {
        assert!(
            self.funcs[func.index()].entry.is_none(),
            "function `{}` defined twice",
            self.funcs[func.index()].name
        );
        let entry = self.new_block();
        self.funcs[func.index()].entry = Some(entry);
        let mut b = BodyBuilder {
            pb: self,
            func,
            block: entry,
        };
        f(&mut b);
    }

    /// Finalizes the program, validating structural invariants.
    pub fn finish(self) -> Result<Program, IrError> {
        self.finish_linted().map(|(p, _)| p)
    }

    /// Finalizes the program and additionally returns lint warnings:
    /// non-fatal constructs (e.g. a condition variable that is waited on but
    /// never signaled) that usually indicate an authoring mistake in a
    /// target system.
    pub fn finish_linted(self) -> Result<(Program, Vec<crate::program::LintWarning>), IrError> {
        let mut funcs = Vec::with_capacity(self.funcs.len());
        for d in &self.funcs {
            let entry = d
                .entry
                .ok_or_else(|| IrError::UndefinedFunction(d.name.clone()))?;
            funcs.push(Function {
                name: d.name.clone(),
                params: d.params,
                locals: d.locals,
                entry,
            });
        }
        let program = Program::assemble(
            self.name,
            funcs,
            self.blocks,
            self.templates,
            self.sites,
            self.globals,
            self.conds,
            self.chans,
            self.execs,
        )?;
        let warnings = program.lints();
        Ok((program, warnings))
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Vec::new());
        id
    }

    fn intern_template(&mut self, text: &str) -> TemplateId {
        if let Some(id) = self.template_index.get(text) {
            return *id;
        }
        let id = TemplateId(self.templates.len() as u32);
        self.templates.push(LogTemplate {
            text: text.to_string(),
        });
        self.template_index.insert(text.to_string(), id);
        id
    }
}

/// Appends statements to one block of one function.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    func: FuncId,
    block: BlockId,
}

impl<'a> BodyBuilder<'a> {
    fn push(&mut self, stmt: Stmt) -> StmtRef {
        let idx = self.pb.blocks[self.block.index()].len() as u32;
        self.pb.blocks[self.block.index()].push(stmt);
        StmtRef::new(self.block, idx)
    }

    fn child(&mut self, f: impl FnOnce(&mut BodyBuilder<'_>)) -> BlockId {
        let block = self.pb.new_block();
        let mut b = BodyBuilder {
            pb: self.pb,
            func: self.func,
            block,
        };
        f(&mut b);
        block
    }

    /// Allocates a fresh local variable slot in the current function.
    pub fn local(&mut self) -> VarId {
        let d = &mut self.pb.funcs[self.func.index()];
        let id = VarId(d.locals);
        d.locals += 1;
        id
    }

    /// Returns the parameter slot `i` of the current function.
    pub fn param(&self, i: u32) -> VarId {
        debug_assert!(i < self.pb.funcs[self.func.index()].params);
        VarId(i)
    }

    /// Emits a log statement, interning the template text.
    pub fn log(&mut self, level: Level, template: &str, args: Vec<Expr>) -> StmtRef {
        let template = self.pb.intern_template(template);
        self.push(Stmt::Log {
            level,
            template,
            args,
            attach_stack: false,
        })
    }

    /// Emits a log statement that attaches the current exception's stack
    /// trace (like `log.warn(msg, throwable)` in Java).
    pub fn log_exc(&mut self, level: Level, template: &str, args: Vec<Expr>) -> StmtRef {
        let template = self.pb.intern_template(template);
        self.push(Stmt::Log {
            level,
            template,
            args,
            attach_stack: true,
        })
    }

    /// Assigns to a local.
    pub fn assign(&mut self, var: VarId, expr: Expr) -> StmtRef {
        self.push(Stmt::Assign { var, expr })
    }

    /// Assigns to a global.
    pub fn set_global(&mut self, global: GlobalId, expr: Expr) -> StmtRef {
        self.push(Stmt::SetGlobal { global, expr })
    }

    /// Pushes onto a queue global.
    pub fn push_back(&mut self, global: GlobalId, expr: Expr) -> StmtRef {
        self.push(Stmt::PushBack { global, expr })
    }

    /// Pops from a queue global into a local (unit when empty).
    pub fn pop_front(&mut self, global: GlobalId, var: VarId) -> StmtRef {
        self.push(Stmt::PopFront { global, var })
    }

    /// Calls a function, discarding its return value.
    pub fn call(&mut self, func: FuncId, args: Vec<Expr>) -> StmtRef {
        self.push(Stmt::Call {
            func,
            args,
            ret: None,
        })
    }

    /// Calls a function, storing its return value.
    pub fn call_ret(&mut self, func: FuncId, args: Vec<Expr>, ret: VarId) -> StmtRef {
        self.push(Stmt::Call {
            func,
            args,
            ret: Some(ret),
        })
    }

    /// Emits an external call fault site with default latency.
    pub fn external(&mut self, desc: &str, throws: &[ExceptionType]) -> SiteId {
        self.external_lat(desc, throws, 1)
    }

    /// Emits an external call fault site with an explicit latency in ticks.
    pub fn external_lat(&mut self, desc: &str, throws: &[ExceptionType], latency: u32) -> SiteId {
        let id = SiteId(self.pb.sites.len() as u32);
        let idx = self.pb.blocks[self.block.index()].len() as u32;
        let stmt = StmtRef::new(self.block, idx);
        self.pb.sites.push(FaultSite {
            id,
            kind: SiteKind::External,
            func: self.func,
            stmt,
            exceptions: throws.to_vec(),
            desc: desc.to_string(),
            latency,
        });
        self.push(Stmt::External { site: id });
        id
    }

    /// Emits a `throw new` fault site (always throws when reached).
    pub fn throw_new(&mut self, desc: &str, exc: ExceptionType) -> SiteId {
        let id = SiteId(self.pb.sites.len() as u32);
        let idx = self.pb.blocks[self.block.index()].len() as u32;
        let stmt = StmtRef::new(self.block, idx);
        self.pb.sites.push(FaultSite {
            id,
            kind: SiteKind::ThrowNew,
            func: self.func,
            stmt,
            exceptions: vec![exc],
            desc: desc.to_string(),
            latency: 0,
        });
        self.push(Stmt::ThrowNew { site: id });
        id
    }

    /// Rethrows the exception caught by the nearest enclosing handler.
    pub fn rethrow(&mut self) -> StmtRef {
        self.push(Stmt::Rethrow)
    }

    /// Emits an `if` with both branches.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut BodyBuilder<'_>),
        else_f: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> StmtRef {
        let then_blk = self.child(then_f);
        let else_blk = self.child(else_f);
        self.push(Stmt::If {
            cond,
            then_blk,
            else_blk: Some(else_blk),
        })
    }

    /// Emits an `if` with only a then branch.
    pub fn if_(&mut self, cond: Expr, then_f: impl FnOnce(&mut BodyBuilder<'_>)) -> StmtRef {
        let then_blk = self.child(then_f);
        self.push(Stmt::If {
            cond,
            then_blk,
            else_blk: None,
        })
    }

    /// Emits a `while` loop.
    pub fn while_(&mut self, cond: Expr, body_f: impl FnOnce(&mut BodyBuilder<'_>)) -> StmtRef {
        let body = self.child(body_f);
        self.push(Stmt::While { cond, body })
    }

    /// Emits an infinite loop (`while true`).
    pub fn loop_(&mut self, body_f: impl FnOnce(&mut BodyBuilder<'_>)) -> StmtRef {
        self.while_(Expr::Const(Value::Bool(true)), body_f)
    }

    /// Emits `try { body } catch (pattern) { handler }`.
    pub fn try_catch(
        &mut self,
        body_f: impl FnOnce(&mut BodyBuilder<'_>),
        pattern: impl Into<ExceptionPattern>,
        handler_f: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> StmtRef {
        let body = self.child(body_f);
        let hblock = self.child(handler_f);
        self.push(Stmt::Try {
            body,
            handlers: vec![Handler {
                pattern: pattern.into(),
                block: hblock,
                bind: None,
            }],
            finally: None,
        })
    }

    /// Emits a `try` with multiple catch clauses and an optional finally.
    pub fn try_full(
        &mut self,
        body_f: impl FnOnce(&mut BodyBuilder<'_>),
        handlers: Vec<(ExceptionPattern, BodyFn<'_>)>,
        finally_f: Option<BodyFn<'_>>,
    ) -> StmtRef {
        let body = self.child(body_f);
        let mut hs = Vec::with_capacity(handlers.len());
        for (pattern, f) in handlers {
            let block = self.child(f);
            hs.push(Handler {
                pattern,
                block,
                bind: None,
            });
        }
        let finally = finally_f.map(|f| self.child(f));
        self.push(Stmt::Try {
            body,
            handlers: hs,
            finally,
        })
    }

    /// Returns from the current function.
    pub fn ret(&mut self, expr: Option<Expr>) -> StmtRef {
        self.push(Stmt::Return { expr })
    }

    /// Breaks out of the nearest loop.
    pub fn break_(&mut self) -> StmtRef {
        self.push(Stmt::Break)
    }

    /// Continues the nearest loop.
    pub fn continue_(&mut self) -> StmtRef {
        self.push(Stmt::Continue)
    }

    /// Spawns a named thread on the current node.
    pub fn spawn(&mut self, name: &str, func: FuncId, args: Vec<Expr>) -> StmtRef {
        self.push(Stmt::Spawn {
            name: name.to_string(),
            func,
            args,
        })
    }

    /// Submits a task to an executor, storing the future handle.
    pub fn submit(
        &mut self,
        exec: ExecId,
        func: FuncId,
        args: Vec<Expr>,
        future: VarId,
    ) -> StmtRef {
        self.push(Stmt::Submit {
            exec,
            func,
            args,
            future: Some(future),
        })
    }

    /// Submits a fire-and-forget task to an executor.
    pub fn submit_forget(&mut self, exec: ExecId, func: FuncId, args: Vec<Expr>) -> StmtRef {
        self.push(Stmt::Submit {
            exec,
            func,
            args,
            future: None,
        })
    }

    /// Awaits a future, optionally with a timeout and a return slot.
    pub fn await_(&mut self, future: VarId, timeout: Option<Expr>, ret: Option<VarId>) -> StmtRef {
        self.push(Stmt::Await {
            future,
            timeout,
            ret,
        })
    }

    /// Sends a message to `(node, chan)`.
    pub fn send(&mut self, node: Expr, chan: ChanId, payload: Expr) -> StmtRef {
        self.push(Stmt::Send {
            node,
            chan,
            payload,
        })
    }

    /// Receives a message from this node's `chan`.
    pub fn recv(&mut self, chan: ChanId, var: VarId, timeout: Option<Expr>) -> StmtRef {
        self.push(Stmt::Recv { chan, var, timeout })
    }

    /// Waits on a condition variable.
    pub fn wait_cond(&mut self, cond: CondId, timeout: Option<Expr>, ok: Option<VarId>) -> StmtRef {
        self.push(Stmt::WaitCond { cond, timeout, ok })
    }

    /// Signals every waiter of a condition variable.
    pub fn signal(&mut self, cond: CondId) -> StmtRef {
        self.push(Stmt::SignalCond { cond })
    }

    /// Sleeps for `ticks`.
    pub fn sleep(&mut self, ticks: Expr) -> StmtRef {
        self.push(Stmt::Sleep { ticks })
    }

    /// Aborts the current node.
    pub fn abort(&mut self, reason: &str) -> StmtRef {
        self.push(Stmt::Abort {
            reason: reason.to_string(),
        })
    }

    /// Ends the current thread.
    pub fn halt(&mut self) -> StmtRef {
        self.push(Stmt::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build as e;

    #[test]
    fn builds_nested_structure() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("g", Value::Int(0));
        let f = pb.declare("f", 1);
        pb.body(f, |b| {
            let v = b.local();
            b.assign(v, e::add(e::var(b.param(0)), e::int(1)));
            b.if_else(
                e::gt(e::var(v), e::int(10)),
                |b| {
                    b.set_global(g, e::var(v));
                },
                |b| {
                    b.log(Level::Info, "small value {}", vec![e::var(v)]);
                },
            );
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].locals, 2);
        assert!(p.func_named("f").is_some());
        // Entry block + then + else.
        assert_eq!(p.blocks.len(), 3);
    }

    #[test]
    fn fault_sites_record_location() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.declare("write", 0);
        pb.body(f, |b| {
            b.try_catch(
                |b| {
                    b.external("disk.write", &[ExceptionType::Io]);
                },
                ExceptionType::Io,
                |b| {
                    b.log(Level::Warn, "write failed", vec![]);
                },
            );
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.sites.len(), 1);
        let site = &p.sites[0];
        assert_eq!(site.kind, SiteKind::External);
        assert_eq!(p.func_of_stmt(site.stmt), FuncId(0));
        assert!(matches!(p.stmt(site.stmt), Stmt::External { .. }));
    }

    #[test]
    fn undefined_function_rejected() {
        let mut pb = ProgramBuilder::new("t");
        pb.declare("ghost", 0);
        assert!(matches!(pb.finish(), Err(IrError::UndefinedFunction(_))));
    }

    #[test]
    fn template_arity_validated() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.declare("f", 0);
        pb.body(f, |b| {
            // Template has one hole but zero args are supplied.
            let template = b.pb.intern_template("value {}");
            b.push(Stmt::Log {
                level: Level::Info,
                template,
                args: vec![],
                attach_stack: false,
            });
        });
        assert!(matches!(
            pb.finish(),
            Err(IrError::TemplateArityMismatch { .. })
        ));
    }

    #[test]
    fn builtin_templates_present() {
        let pb = ProgramBuilder::new("t");
        let mut pb = pb;
        let f = pb.declare("f", 0);
        pb.body(f, |b| {
            b.halt();
        });
        let p = pb.finish().unwrap();
        assert!(p.templates[TMPL_UNCAUGHT.index()]
            .text
            .contains("Uncaught exception"));
        assert!(p.templates[TMPL_ABORT.index()].text.contains("ABORT"));
    }

    #[test]
    fn unsignaled_cond_linted() {
        let mut pb = ProgramBuilder::new("t");
        let ready = pb.cond("ready");
        let f = pb.declare("f", 0);
        pb.body(f, |b| {
            b.wait_cond(ready, Some(e::int(10)), None);
        });
        let (_, warnings) = pb.finish_linted().unwrap();
        assert_eq!(warnings.len(), 1);
        let crate::program::LintWarning::UnsignaledCond { name, .. } = &warnings[0] else {
            panic!("expected UnsignaledCond, got {:?}", warnings[0]);
        };
        assert_eq!(name, "ready");
    }

    #[test]
    fn signaled_cond_not_linted() {
        let mut pb = ProgramBuilder::new("t");
        let ready = pb.cond("ready");
        let f = pb.declare("waiter", 0);
        let g = pb.declare("signaler", 0);
        pb.body(f, |b| {
            b.wait_cond(ready, None, None);
        });
        pb.body(g, |b| {
            b.signal(ready);
        });
        let (_, warnings) = pb.finish_linted().unwrap();
        assert!(warnings.is_empty());
    }

    #[test]
    fn duplicate_body_panics() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.declare("f", 0);
        pb.body(f, |b| {
            b.halt();
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pb.body(f, |b| {
                b.halt();
            });
        }));
        assert!(result.is_err());
    }
}
