//! The program container and structural queries used by the analyses.

use std::collections::HashMap;

use crate::exception::ExceptionType;
use crate::ids::{BlockId, FuncId, SiteId, StmtRef, TemplateId};
use crate::log::LogTemplate;
use crate::stmt::Stmt;
use crate::value::Value;

/// Errors detected while validating a built program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A function was declared but its body was never defined.
    UndefinedFunction(String),
    /// A block is owned by more than one structural parent.
    SharedBlock(BlockId),
    /// A statement references an out-of-range id.
    DanglingReference(String),
    /// A log statement's argument count does not match its template arity.
    TemplateArityMismatch {
        /// The offending statement.
        stmt: StmtRef,
        /// The template's hole count.
        expected: usize,
        /// The number of arguments supplied.
        got: usize,
    },
    /// Two log templates share the same text, making
    /// [`Program::template_named`] (and hence observable resolution)
    /// ambiguous.
    DuplicateTemplate(String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UndefinedFunction(name) => write!(f, "function `{name}` has no body"),
            IrError::SharedBlock(b) => write!(f, "block {b} has multiple parents"),
            IrError::DanglingReference(what) => write!(f, "dangling reference: {what}"),
            IrError::TemplateArityMismatch {
                stmt,
                expected,
                got,
            } => write!(
                f,
                "log at {stmt} supplies {got} args for a template with {expected} holes"
            ),
            IrError::DuplicateTemplate(text) => {
                write!(f, "duplicate log template `{text}`")
            }
        }
    }
}

/// A non-fatal issue found while linting a built program.
///
/// Warnings are advisory: the program is still executable, but the flagged
/// construct usually indicates a target-modelling mistake (e.g. a
/// condition-variable wait that can only ever time out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintWarning {
    /// A condition variable is waited on but no statement ever signals it,
    /// so every [`Stmt::WaitCond`] on it either blocks forever or times
    /// out.
    UnsignaledCond {
        /// The offending condition variable.
        cond: crate::ids::CondId,
        /// Its declared name.
        name: String,
    },
    /// A condition variable is signaled but no statement ever waits on it,
    /// so every [`Stmt::SignalCond`] is a no-op.
    UnwaitedCond {
        /// The offending condition variable.
        cond: crate::ids::CondId,
        /// Its declared name.
        name: String,
    },
    /// A channel is sent to but no statement ever receives from it, so
    /// every [`Stmt::Send`] queues a message nobody consumes.
    UnreceivedChan {
        /// The offending channel.
        chan: crate::ids::ChanId,
        /// Its declared name.
        name: String,
    },
    /// A channel is received from but no statement ever sends to it, so
    /// every [`Stmt::Recv`] either blocks forever or times out.
    UnsentChan {
        /// The offending channel.
        chan: crate::ids::ChanId,
        /// Its declared name.
        name: String,
    },
    /// An [`Stmt::Await`] whose future variable is never written in the
    /// function (and is not a parameter), so the await always sees a
    /// non-future value.
    UnsubmittedAwait {
        /// Name of the containing function.
        func: String,
        /// The await statement.
        at: StmtRef,
    },
    /// A global variable is written but never read by any expression (or
    /// queue pop). Meta-info globals are exempt: the CrashTuner baseline
    /// and the oracle read them out of band.
    UnreadGlobal {
        /// The offending global.
        global: crate::ids::GlobalId,
        /// Its declared name.
        name: String,
    },
    /// A fault site the occurrence-bounds analysis proves can never
    /// execute (`hi == 0`) under the analyzed workload roots; injecting
    /// into it can never do anything.
    DeadSite {
        /// The offending fault site.
        site: SiteId,
        /// Its human-readable description.
        desc: String,
    },
}

impl std::fmt::Display for LintWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintWarning::UnsignaledCond { cond, name } => write!(
                f,
                "condition variable `{name}` ({cond}) is waited on but never signaled"
            ),
            LintWarning::UnwaitedCond { cond, name } => write!(
                f,
                "condition variable `{name}` ({cond}) is signaled but never waited on"
            ),
            LintWarning::UnreceivedChan { chan, name } => write!(
                f,
                "channel `{name}` ({chan}) is sent to but never received from"
            ),
            LintWarning::UnsentChan { chan, name } => write!(
                f,
                "channel `{name}` ({chan}) is received from but never sent to"
            ),
            LintWarning::UnsubmittedAwait { func, at } => write!(
                f,
                "await at {at} in `{func}` on a future that is never produced"
            ),
            LintWarning::UnreadGlobal { global, name } => {
                write!(f, "global `{name}` ({global}) is written but never read")
            }
            LintWarning::DeadSite { site, desc } => write!(
                f,
                "fault site `{desc}` ({site}) is statically dead (bound hi = 0)"
            ),
        }
    }
}

impl std::error::Error for IrError {}

/// The structural role a block plays under its parent statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Function entry block (no parent statement).
    Entry,
    /// `then` branch of an [`Stmt::If`].
    Then,
    /// `else` branch of an [`Stmt::If`].
    Else,
    /// Body of a [`Stmt::While`].
    LoopBody,
    /// Protected body of a [`Stmt::Try`].
    TryBody,
    /// The `i`-th catch clause of a [`Stmt::Try`].
    Handler(u32),
    /// Finally block of a [`Stmt::Try`].
    Finally,
}

/// Where a block sits in the program structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParent {
    /// The owning statement, or `None` for a function entry block.
    pub stmt: Option<StmtRef>,
    /// The block's role under that statement.
    pub role: BlockRole,
    /// The function the block belongs to.
    pub func: FuncId,
}

/// How a fault site can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// An external library / OS / RPC call ([`Stmt::External`]); in the
    /// paper's taxonomy an *external-exception* source node.
    External,
    /// A `throw new` in internal code ([`Stmt::ThrowNew`]); a
    /// *new-exception* source node.
    ThrowNew,
}

/// Static metadata for one fault site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSite {
    /// This site's id (its index in [`Program::sites`]).
    pub id: SiteId,
    /// Whether the site is an external call or a `throw new`.
    pub kind: SiteKind,
    /// The function containing the site.
    pub func: FuncId,
    /// The site's statement.
    pub stmt: StmtRef,
    /// Exception types the site can throw. External sites may declare
    /// several; `throw new` sites have exactly one.
    pub exceptions: Vec<ExceptionType>,
    /// Human-readable description, e.g. `"hdfs.channelRead0"`.
    pub desc: String,
    /// Simulated latency of the call in ticks (external sites only).
    pub latency: u32,
}

/// Static metadata for one per-node global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Variable name (unique within the program).
    pub name: String,
    /// Initial value on every node.
    pub init: Value,
    /// `true` if the variable holds node "meta-info" (membership, leader
    /// identity, epoch); used by the CrashTuner baseline.
    pub meta_info: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of parameters (bound to locals `0..params`).
    pub params: u32,
    /// Total number of local slots, including parameters.
    pub locals: u32,
    /// Entry block.
    pub entry: BlockId,
}

/// A complete IR program plus interned metadata tables.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program (target system) name.
    pub name: String,
    /// All functions.
    pub funcs: Vec<Function>,
    /// All statement blocks (functions reference them by id).
    pub blocks: Vec<Vec<Stmt>>,
    /// Interned log templates.
    pub templates: Vec<LogTemplate>,
    /// All static fault sites.
    pub sites: Vec<FaultSite>,
    /// Per-node global variables.
    pub globals: Vec<GlobalInfo>,
    /// Names of per-node condition variables.
    pub conds: Vec<String>,
    /// Names of per-node message channels.
    pub chans: Vec<String>,
    /// Names of per-node single-threaded executors.
    pub execs: Vec<String>,
    block_parent: Vec<BlockParent>,
    func_by_name: HashMap<String, FuncId>,
    template_by_text: HashMap<String, TemplateId>,
}

impl Program {
    /// Assembles a program from its parts and computes derived tables.
    ///
    /// Intended to be called by [`crate::builder::ProgramBuilder::finish`];
    /// validates structural invariants.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        name: String,
        funcs: Vec<Function>,
        blocks: Vec<Vec<Stmt>>,
        templates: Vec<LogTemplate>,
        sites: Vec<FaultSite>,
        globals: Vec<GlobalInfo>,
        conds: Vec<String>,
        chans: Vec<String>,
        execs: Vec<String>,
    ) -> Result<Self, IrError> {
        let mut program = Program {
            name,
            funcs,
            blocks,
            templates,
            sites,
            globals,
            conds,
            chans,
            execs,
            block_parent: Vec::new(),
            func_by_name: HashMap::new(),
            template_by_text: HashMap::new(),
        };
        program.compute_parents()?;
        program.build_indexes();
        program.validate()?;
        Ok(program)
    }

    fn compute_parents(&mut self) -> Result<(), IrError> {
        let placeholder = BlockParent {
            stmt: None,
            role: BlockRole::Entry,
            func: FuncId(u32::MAX),
        };
        let mut parents = vec![None; self.blocks.len()];
        for (fid, func) in self.funcs.iter().enumerate() {
            let fid = FuncId(fid as u32);
            if parents[func.entry.index()].is_some() {
                return Err(IrError::SharedBlock(func.entry));
            }
            parents[func.entry.index()] = Some(BlockParent {
                stmt: None,
                role: BlockRole::Entry,
                func: fid,
            });
            // Walk the block tree of this function.
            let mut stack = vec![func.entry];
            while let Some(block) = stack.pop() {
                for (idx, stmt) in self.blocks[block.index()].iter().enumerate() {
                    let sref = StmtRef::new(block, idx as u32);
                    for (child, role) in stmt.child_blocks() {
                        if parents[child.index()].is_some() {
                            return Err(IrError::SharedBlock(child));
                        }
                        parents[child.index()] = Some(BlockParent {
                            stmt: Some(sref),
                            role,
                            func: fid,
                        });
                        stack.push(child);
                    }
                }
            }
        }
        self.block_parent = parents
            .into_iter()
            .map(|p| p.unwrap_or(placeholder))
            .collect();
        Ok(())
    }

    fn build_indexes(&mut self) {
        self.func_by_name = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        self.template_by_text = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| (t.text.clone(), TemplateId(i as u32)))
            .collect();
    }

    fn validate(&self) -> Result<(), IrError> {
        let mut seen_templates = std::collections::HashSet::new();
        for t in &self.templates {
            if !seen_templates.insert(t.text.as_str()) {
                return Err(IrError::DuplicateTemplate(t.text.clone()));
            }
        }
        for (sref, stmt) in self.all_stmts() {
            if let Stmt::Log { template, args, .. } = stmt {
                let arity = self
                    .templates
                    .get(template.index())
                    .ok_or_else(|| IrError::DanglingReference(format!("template {template}")))?
                    .arity();
                if args.len() != arity {
                    return Err(IrError::TemplateArityMismatch {
                        stmt: sref,
                        expected: arity,
                        got: args.len(),
                    });
                }
            }
            if let Some(site) = stmt.site() {
                if site.index() >= self.sites.len() {
                    return Err(IrError::DanglingReference(format!("site {site}")));
                }
            }
            if let Stmt::Call { func, .. } | Stmt::Spawn { func, .. } | Stmt::Submit { func, .. } =
                stmt
            {
                if func.index() >= self.funcs.len() {
                    return Err(IrError::DanglingReference(format!("function {func}")));
                }
            }
        }
        Ok(())
    }

    /// Looks up a function by name.
    pub fn func_named(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// Looks up a template by its exact text.
    pub fn template_named(&self, text: &str) -> Option<TemplateId> {
        self.template_by_text.get(text).copied()
    }

    /// Returns the statement at a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range (references produced by this
    /// program's own tables are always valid).
    pub fn stmt(&self, r: StmtRef) -> &Stmt {
        &self.blocks[r.block.index()][r.idx as usize]
    }

    /// Returns the structural parent of a block.
    pub fn block_parent(&self, b: BlockId) -> BlockParent {
        self.block_parent[b.index()]
    }

    /// Returns the function that contains a block.
    pub fn func_of_block(&self, b: BlockId) -> FuncId {
        self.block_parent[b.index()].func
    }

    /// Returns the function that contains a statement.
    pub fn func_of_stmt(&self, r: StmtRef) -> FuncId {
        self.func_of_block(r.block)
    }

    /// Iterates over every statement in the program.
    pub fn all_stmts(&self) -> impl Iterator<Item = (StmtRef, &Stmt)> {
        self.blocks.iter().enumerate().flat_map(|(b, stmts)| {
            stmts
                .iter()
                .enumerate()
                .map(move |(i, s)| (StmtRef::new(BlockId(b as u32), i as u32), s))
        })
    }

    /// Total number of statements; a proxy for "lines of code" in Table 1.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Finds the template ids whose rendered form could equal `body`.
    pub fn templates_matching(&self, body: &str) -> Vec<TemplateId> {
        self.templates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.matches(body))
            .map(|(i, _)| TemplateId(i as u32))
            .collect()
    }

    /// Returns all log statements that use the given template.
    pub fn log_stmts_of_template(&self, template: TemplateId) -> Vec<StmtRef> {
        self.all_stmts()
            .filter(|(_, s)| matches!(s, Stmt::Log { template: t, .. } if *t == template))
            .map(|(r, _)| r)
            .collect()
    }

    /// Returns every `Return` statement of a function.
    ///
    /// Used by the interprocedural slicer to jump from a `Call { ret }`
    /// writer into the callee's return expressions. A function with no
    /// `Return` statements returns unit implicitly, so an empty result is
    /// normal.
    pub fn return_stmts_of(&self, func: FuncId) -> Vec<StmtRef> {
        self.all_stmts()
            .filter(|(r, s)| matches!(s, Stmt::Return { .. }) && self.func_of_stmt(*r) == func)
            .map(|(r, _)| r)
            .collect()
    }

    /// Lints the program for advisory issues (see [`LintWarning`]).
    ///
    /// Fatal structural problems (duplicate templates, dangling
    /// references) are rejected at build time; this reports the non-fatal
    /// smells on top: unpaired concurrency primitives (condition
    /// variables, channels, futures) and write-only globals.
    ///
    /// The result is deterministically ordered by the `(function, block,
    /// statement)` position of each warning's anchor statement (the first
    /// use of the unpaired primitive, in program order), so serialized
    /// reports are byte-stable across runs.
    pub fn lints(&self) -> Vec<LintWarning> {
        let mut anchored = self.syntactic_lints();
        anchored.sort_by_key(|(key, _)| *key);
        anchored.into_iter().map(|(_, w)| w).collect()
    }

    /// [`Program::lints`] plus the bounds-aware lint: fault sites the
    /// occurrence-bounds analysis proves dead (`hi == 0`).
    ///
    /// `site_hi` is the per-site static upper bound indexed by `SiteId`
    /// (`None` = unbounded), as produced by the dataflow analysis in
    /// `anduril-causal` (`OccurrenceBounds::site_his`). Ordering follows
    /// the same `(function, block, statement)` anchor rule, a dead site
    /// anchoring at its own statement.
    pub fn lints_with_bounds(&self, site_hi: &[Option<u64>]) -> Vec<LintWarning> {
        let mut anchored = self.syntactic_lints();
        for site in &self.sites {
            if site_hi.get(site.id.index()).copied() == Some(Some(0)) {
                anchored.push((
                    self.anchor_key(site.stmt),
                    LintWarning::DeadSite {
                        site: site.id,
                        desc: site.desc.clone(),
                    },
                ));
            }
        }
        anchored.sort_by_key(|(key, _)| *key);
        anchored.into_iter().map(|(_, w)| w).collect()
    }

    /// The deterministic sort key of a warning anchored at `r`.
    fn anchor_key(&self, r: StmtRef) -> (u32, u32, u32) {
        (self.func_of_stmt(r).0, r.block.0, r.idx)
    }

    /// Computes the syntactic (bounds-free) lints, each paired with its
    /// anchor key; unsorted.
    fn syntactic_lints(&self) -> Vec<((u32, u32, u32), LintWarning)> {
        use std::collections::BTreeMap;
        // First statement touching each primitive, per role.
        let mut cond_waits: BTreeMap<crate::ids::CondId, StmtRef> = BTreeMap::new();
        let mut cond_signals: BTreeMap<crate::ids::CondId, StmtRef> = BTreeMap::new();
        let mut chan_sends: BTreeMap<crate::ids::ChanId, StmtRef> = BTreeMap::new();
        let mut chan_recvs: BTreeMap<crate::ids::ChanId, StmtRef> = BTreeMap::new();
        let mut global_writes: BTreeMap<crate::ids::GlobalId, StmtRef> = BTreeMap::new();
        let mut global_reads: std::collections::BTreeSet<crate::ids::GlobalId> =
            std::collections::BTreeSet::new();
        let mut awaits: Vec<(StmtRef, crate::ids::VarId)> = Vec::new();
        // Local-variable writers per function (for the future-producer
        // check); params are implicit writers.
        let mut var_writers: std::collections::BTreeSet<(FuncId, crate::ids::VarId)> =
            std::collections::BTreeSet::new();

        fn first<K: Ord>(this: &Program, map: &mut BTreeMap<K, StmtRef>, key: K, r: StmtRef) {
            let entry = map.entry(key).or_insert(r);
            if this.anchor_key(r) < this.anchor_key(*entry) {
                *entry = r;
            }
        }
        for (r, stmt) in self.all_stmts() {
            let func = self.func_of_stmt(r);
            match stmt {
                Stmt::WaitCond { cond, .. } => first(self, &mut cond_waits, *cond, r),
                Stmt::SignalCond { cond } => first(self, &mut cond_signals, *cond, r),
                Stmt::Send { chan, .. } => first(self, &mut chan_sends, *chan, r),
                Stmt::Recv { chan, .. } => first(self, &mut chan_recvs, *chan, r),
                Stmt::SetGlobal { global, .. } | Stmt::PushBack { global, .. } => {
                    first(self, &mut global_writes, *global, r)
                }
                Stmt::PopFront { global, .. } => {
                    global_reads.insert(*global);
                }
                Stmt::Await { future, .. } => awaits.push((r, *future)),
                _ => {}
            }
            match stmt {
                Stmt::Assign { var, .. } | Stmt::PopFront { var, .. } | Stmt::Recv { var, .. } => {
                    var_writers.insert((func, *var));
                }
                Stmt::Call { ret: Some(v), .. }
                | Stmt::Submit {
                    future: Some(v), ..
                }
                | Stmt::Await { ret: Some(v), .. }
                | Stmt::WaitCond { ok: Some(v), .. } => {
                    var_writers.insert((func, *v));
                }
                Stmt::Try { handlers, .. } => {
                    for h in handlers {
                        if let Some(v) = h.bind {
                            var_writers.insert((func, v));
                        }
                    }
                }
                _ => {}
            }
            for expr in stmt.exprs() {
                let (_, globals) = expr.reads_collected();
                global_reads.extend(globals);
            }
        }

        let mut out = Vec::new();
        for (&cond, &r) in &cond_waits {
            if !cond_signals.contains_key(&cond) {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnsignaledCond {
                        cond,
                        name: self.conds[cond.index()].clone(),
                    },
                ));
            }
        }
        for (&cond, &r) in &cond_signals {
            if !cond_waits.contains_key(&cond) {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnwaitedCond {
                        cond,
                        name: self.conds[cond.index()].clone(),
                    },
                ));
            }
        }
        for (&chan, &r) in &chan_sends {
            if !chan_recvs.contains_key(&chan) {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnreceivedChan {
                        chan,
                        name: self.chans[chan.index()].clone(),
                    },
                ));
            }
        }
        for (&chan, &r) in &chan_recvs {
            if !chan_sends.contains_key(&chan) {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnsentChan {
                        chan,
                        name: self.chans[chan.index()].clone(),
                    },
                ));
            }
        }
        for (r, future) in awaits {
            let func = self.func_of_stmt(r);
            let is_param = future.0 < self.funcs[func.index()].params;
            if !is_param && !var_writers.contains(&(func, future)) {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnsubmittedAwait {
                        func: self.funcs[func.index()].name.clone(),
                        at: r,
                    },
                ));
            }
        }
        for (&global, &r) in &global_writes {
            if !global_reads.contains(&global) && !self.globals[global.index()].meta_info {
                out.push((
                    self.anchor_key(r),
                    LintWarning::UnreadGlobal {
                        global,
                        name: self.globals[global.index()].name.clone(),
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogTemplate;

    fn one_func(blocks: Vec<Vec<Stmt>>, templates: Vec<LogTemplate>) -> Result<Program, IrError> {
        Program::assemble(
            "t".into(),
            vec![Function {
                name: "f".into(),
                params: 0,
                locals: 0,
                entry: crate::ids::BlockId(0),
            }],
            blocks,
            templates,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn duplicate_templates_rejected() {
        let templates = vec![
            LogTemplate {
                text: "sync failed".into(),
            },
            LogTemplate {
                text: "sync failed".into(),
            },
        ];
        let err = one_func(vec![vec![Stmt::Halt]], templates).unwrap_err();
        assert!(matches!(err, IrError::DuplicateTemplate(t) if t == "sync failed"));
    }

    #[test]
    fn distinct_templates_accepted() {
        let templates = vec![
            LogTemplate {
                text: "sync failed".into(),
            },
            LogTemplate {
                text: "sync ok".into(),
            },
        ];
        assert!(one_func(vec![vec![Stmt::Halt]], templates).is_ok());
    }

    #[test]
    fn lint_suite_flags_each_unpaired_primitive() {
        use crate::builder::ProgramBuilder;
        use crate::expr::build as e;
        use crate::log::Level;
        let mut pb = ProgramBuilder::new("t");
        let ghost_wait = pb.cond("ghost_wait"); // waited, never signaled
        let ghost_sig = pb.cond("ghost_sig"); // signaled, never waited
        let paired = pb.cond("paired");
        let dead_letter = pb.chan("dead_letter"); // sent, never received
        let silent = pb.chan("silent"); // received, never sent
        let write_only = pb.global("write_only", Value::Int(0));
        let meta = pb.meta_global("leader", Value::Int(0));
        let read_back = pb.global("read_back", Value::Int(0));
        let f = pb.declare("f", 1);
        pb.body(f, |b| {
            b.wait_cond(ghost_wait, Some(e::int(5)), None);
            b.signal(ghost_sig);
            b.wait_cond(paired, None, None);
            b.signal(paired);
            b.send(e::str_("n1"), dead_letter, e::int(1));
            let v = b.local();
            b.recv(silent, v, Some(e::int(5)));
            b.set_global(write_only, e::int(1));
            b.set_global(meta, e::int(2)); // meta-info: exempt
            b.set_global(read_back, e::int(3));
            b.log(Level::Info, "rb {}", vec![e::glob(read_back)]);
            let fut = b.local(); // never written: await lints
            b.await_(fut, Some(e::int(5)), None);
            let arg_fut = b.param(0); // param: exempt
            b.await_(arg_fut, Some(e::int(5)), None);
        });
        let p = pb.finish().unwrap();
        let lints = p.lints();
        // One warning of each kind, in statement order.
        assert_eq!(lints.len(), 6);
        assert!(
            matches!(&lints[0], LintWarning::UnsignaledCond { name, .. } if name == "ghost_wait")
        );
        assert!(matches!(&lints[1], LintWarning::UnwaitedCond { name, .. } if name == "ghost_sig"));
        assert!(
            matches!(&lints[2], LintWarning::UnreceivedChan { name, .. } if name == "dead_letter")
        );
        assert!(matches!(&lints[3], LintWarning::UnsentChan { name, .. } if name == "silent"));
        assert!(
            matches!(&lints[4], LintWarning::UnreadGlobal { name, .. } if name == "write_only")
        );
        assert!(matches!(&lints[5], LintWarning::UnsubmittedAwait { func, .. } if func == "f"));
    }

    #[test]
    fn lints_are_ordered_by_function_block_and_statement() {
        use crate::builder::ProgramBuilder;
        use crate::expr::build as e;
        // Declare primitives in the opposite order of their first use so id
        // order and anchor order disagree.
        let mut pb = ProgramBuilder::new("t");
        let late = pb.cond("late");
        let early = pb.cond("early");
        let f1 = pb.declare("f1", 0);
        let f2 = pb.declare("f2", 0);
        pb.body(f1, |b| {
            b.wait_cond(early, Some(e::int(1)), None);
        });
        pb.body(f2, |b| {
            b.wait_cond(late, Some(e::int(1)), None);
        });
        let p = pb.finish().unwrap();
        let lints = p.lints();
        assert_eq!(lints.len(), 2);
        assert!(matches!(&lints[0], LintWarning::UnsignaledCond { name, .. } if name == "early"));
        assert!(matches!(&lints[1], LintWarning::UnsignaledCond { name, .. } if name == "late"));
        // Byte-stable: repeated runs render identically.
        let render = |ws: &[LintWarning]| ws.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert_eq!(render(&p.lints()), render(&lints));
    }

    #[test]
    fn dead_sites_lint_with_bounds_and_anchor_in_order() {
        use crate::builder::ProgramBuilder;
        use crate::expr::build as e;
        let mut pb = ProgramBuilder::new("t");
        let ghost = pb.cond("ghost");
        let f = pb.declare("f", 0);
        pb.body(f, |b| {
            b.external("a.op", &[ExceptionType::Io]);
            b.wait_cond(ghost, Some(e::int(1)), None);
            b.external("b.op", &[ExceptionType::Io]);
        });
        let p = pb.finish().unwrap();
        // a.op dead, b.op live: the DeadSite warning slots in before the
        // cond warning because its statement comes first.
        let lints = p.lints_with_bounds(&[Some(0), Some(3)]);
        assert_eq!(lints.len(), 2);
        assert!(matches!(&lints[0], LintWarning::DeadSite { desc, .. } if desc == "a.op"));
        assert!(matches!(&lints[1], LintWarning::UnsignaledCond { .. }));
        // No bounds info at all degrades to the syntactic suite.
        assert_eq!(p.lints_with_bounds(&[None, None]).len(), 1);
    }

    #[test]
    fn return_stmts_of_finds_all_returns_per_function() {
        use crate::builder::ProgramBuilder;
        use crate::expr::build as e;
        let mut pb = ProgramBuilder::new("t");
        let two = pb.declare("two_returns", 0);
        let none = pb.declare("no_return", 0);
        pb.body(two, |b| {
            b.if_(e::gt(e::rand(0, 10), e::int(5)), |b| {
                b.ret(Some(e::int(1)));
            });
            b.ret(Some(e::int(0)));
        });
        pb.body(none, |b| {
            b.halt();
        });
        let p = pb.finish().unwrap();
        assert_eq!(p.return_stmts_of(two).len(), 2);
        assert!(p.return_stmts_of(none).is_empty());
    }
}
