//! The program container and structural queries used by the analyses.

use std::collections::HashMap;

use crate::exception::ExceptionType;
use crate::ids::{BlockId, FuncId, SiteId, StmtRef, TemplateId};
use crate::log::LogTemplate;
use crate::stmt::Stmt;
use crate::value::Value;

/// Errors detected while validating a built program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A function was declared but its body was never defined.
    UndefinedFunction(String),
    /// A block is owned by more than one structural parent.
    SharedBlock(BlockId),
    /// A statement references an out-of-range id.
    DanglingReference(String),
    /// A log statement's argument count does not match its template arity.
    TemplateArityMismatch {
        /// The offending statement.
        stmt: StmtRef,
        /// The template's hole count.
        expected: usize,
        /// The number of arguments supplied.
        got: usize,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UndefinedFunction(name) => write!(f, "function `{name}` has no body"),
            IrError::SharedBlock(b) => write!(f, "block {b} has multiple parents"),
            IrError::DanglingReference(what) => write!(f, "dangling reference: {what}"),
            IrError::TemplateArityMismatch {
                stmt,
                expected,
                got,
            } => write!(
                f,
                "log at {stmt} supplies {got} args for a template with {expected} holes"
            ),
        }
    }
}

impl std::error::Error for IrError {}

/// The structural role a block plays under its parent statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Function entry block (no parent statement).
    Entry,
    /// `then` branch of an [`Stmt::If`].
    Then,
    /// `else` branch of an [`Stmt::If`].
    Else,
    /// Body of a [`Stmt::While`].
    LoopBody,
    /// Protected body of a [`Stmt::Try`].
    TryBody,
    /// The `i`-th catch clause of a [`Stmt::Try`].
    Handler(u32),
    /// Finally block of a [`Stmt::Try`].
    Finally,
}

/// Where a block sits in the program structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParent {
    /// The owning statement, or `None` for a function entry block.
    pub stmt: Option<StmtRef>,
    /// The block's role under that statement.
    pub role: BlockRole,
    /// The function the block belongs to.
    pub func: FuncId,
}

/// How a fault site can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// An external library / OS / RPC call ([`Stmt::External`]); in the
    /// paper's taxonomy an *external-exception* source node.
    External,
    /// A `throw new` in internal code ([`Stmt::ThrowNew`]); a
    /// *new-exception* source node.
    ThrowNew,
}

/// Static metadata for one fault site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSite {
    /// This site's id (its index in [`Program::sites`]).
    pub id: SiteId,
    /// Whether the site is an external call or a `throw new`.
    pub kind: SiteKind,
    /// The function containing the site.
    pub func: FuncId,
    /// The site's statement.
    pub stmt: StmtRef,
    /// Exception types the site can throw. External sites may declare
    /// several; `throw new` sites have exactly one.
    pub exceptions: Vec<ExceptionType>,
    /// Human-readable description, e.g. `"hdfs.channelRead0"`.
    pub desc: String,
    /// Simulated latency of the call in ticks (external sites only).
    pub latency: u32,
}

/// Static metadata for one per-node global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Variable name (unique within the program).
    pub name: String,
    /// Initial value on every node.
    pub init: Value,
    /// `true` if the variable holds node "meta-info" (membership, leader
    /// identity, epoch); used by the CrashTuner baseline.
    pub meta_info: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of parameters (bound to locals `0..params`).
    pub params: u32,
    /// Total number of local slots, including parameters.
    pub locals: u32,
    /// Entry block.
    pub entry: BlockId,
}

/// A complete IR program plus interned metadata tables.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program (target system) name.
    pub name: String,
    /// All functions.
    pub funcs: Vec<Function>,
    /// All statement blocks (functions reference them by id).
    pub blocks: Vec<Vec<Stmt>>,
    /// Interned log templates.
    pub templates: Vec<LogTemplate>,
    /// All static fault sites.
    pub sites: Vec<FaultSite>,
    /// Per-node global variables.
    pub globals: Vec<GlobalInfo>,
    /// Names of per-node condition variables.
    pub conds: Vec<String>,
    /// Names of per-node message channels.
    pub chans: Vec<String>,
    /// Names of per-node single-threaded executors.
    pub execs: Vec<String>,
    block_parent: Vec<BlockParent>,
    func_by_name: HashMap<String, FuncId>,
    template_by_text: HashMap<String, TemplateId>,
}

impl Program {
    /// Assembles a program from its parts and computes derived tables.
    ///
    /// Intended to be called by [`crate::builder::ProgramBuilder::finish`];
    /// validates structural invariants.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        name: String,
        funcs: Vec<Function>,
        blocks: Vec<Vec<Stmt>>,
        templates: Vec<LogTemplate>,
        sites: Vec<FaultSite>,
        globals: Vec<GlobalInfo>,
        conds: Vec<String>,
        chans: Vec<String>,
        execs: Vec<String>,
    ) -> Result<Self, IrError> {
        let mut program = Program {
            name,
            funcs,
            blocks,
            templates,
            sites,
            globals,
            conds,
            chans,
            execs,
            block_parent: Vec::new(),
            func_by_name: HashMap::new(),
            template_by_text: HashMap::new(),
        };
        program.compute_parents()?;
        program.build_indexes();
        program.validate()?;
        Ok(program)
    }

    fn compute_parents(&mut self) -> Result<(), IrError> {
        let placeholder = BlockParent {
            stmt: None,
            role: BlockRole::Entry,
            func: FuncId(u32::MAX),
        };
        let mut parents = vec![None; self.blocks.len()];
        for (fid, func) in self.funcs.iter().enumerate() {
            let fid = FuncId(fid as u32);
            if parents[func.entry.index()].is_some() {
                return Err(IrError::SharedBlock(func.entry));
            }
            parents[func.entry.index()] = Some(BlockParent {
                stmt: None,
                role: BlockRole::Entry,
                func: fid,
            });
            // Walk the block tree of this function.
            let mut stack = vec![func.entry];
            while let Some(block) = stack.pop() {
                for (idx, stmt) in self.blocks[block.index()].iter().enumerate() {
                    let sref = StmtRef::new(block, idx as u32);
                    for (child, role) in stmt.child_blocks() {
                        if parents[child.index()].is_some() {
                            return Err(IrError::SharedBlock(child));
                        }
                        parents[child.index()] = Some(BlockParent {
                            stmt: Some(sref),
                            role,
                            func: fid,
                        });
                        stack.push(child);
                    }
                }
            }
        }
        self.block_parent = parents
            .into_iter()
            .map(|p| p.unwrap_or(placeholder))
            .collect();
        Ok(())
    }

    fn build_indexes(&mut self) {
        self.func_by_name = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        self.template_by_text = self
            .templates
            .iter()
            .enumerate()
            .map(|(i, t)| (t.text.clone(), TemplateId(i as u32)))
            .collect();
    }

    fn validate(&self) -> Result<(), IrError> {
        for (sref, stmt) in self.all_stmts() {
            if let Stmt::Log { template, args, .. } = stmt {
                let arity = self
                    .templates
                    .get(template.index())
                    .ok_or_else(|| IrError::DanglingReference(format!("template {template}")))?
                    .arity();
                if args.len() != arity {
                    return Err(IrError::TemplateArityMismatch {
                        stmt: sref,
                        expected: arity,
                        got: args.len(),
                    });
                }
            }
            if let Some(site) = stmt.site() {
                if site.index() >= self.sites.len() {
                    return Err(IrError::DanglingReference(format!("site {site}")));
                }
            }
            if let Stmt::Call { func, .. } | Stmt::Spawn { func, .. } | Stmt::Submit { func, .. } =
                stmt
            {
                if func.index() >= self.funcs.len() {
                    return Err(IrError::DanglingReference(format!("function {func}")));
                }
            }
        }
        Ok(())
    }

    /// Looks up a function by name.
    pub fn func_named(&self, name: &str) -> Option<FuncId> {
        self.func_by_name.get(name).copied()
    }

    /// Looks up a template by its exact text.
    pub fn template_named(&self, text: &str) -> Option<TemplateId> {
        self.template_by_text.get(text).copied()
    }

    /// Returns the statement at a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range (references produced by this
    /// program's own tables are always valid).
    pub fn stmt(&self, r: StmtRef) -> &Stmt {
        &self.blocks[r.block.index()][r.idx as usize]
    }

    /// Returns the structural parent of a block.
    pub fn block_parent(&self, b: BlockId) -> BlockParent {
        self.block_parent[b.index()]
    }

    /// Returns the function that contains a block.
    pub fn func_of_block(&self, b: BlockId) -> FuncId {
        self.block_parent[b.index()].func
    }

    /// Returns the function that contains a statement.
    pub fn func_of_stmt(&self, r: StmtRef) -> FuncId {
        self.func_of_block(r.block)
    }

    /// Iterates over every statement in the program.
    pub fn all_stmts(&self) -> impl Iterator<Item = (StmtRef, &Stmt)> {
        self.blocks.iter().enumerate().flat_map(|(b, stmts)| {
            stmts
                .iter()
                .enumerate()
                .map(move |(i, s)| (StmtRef::new(BlockId(b as u32), i as u32), s))
        })
    }

    /// Total number of statements; a proxy for "lines of code" in Table 1.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Finds the template ids whose rendered form could equal `body`.
    pub fn templates_matching(&self, body: &str) -> Vec<TemplateId> {
        self.templates
            .iter()
            .enumerate()
            .filter(|(_, t)| t.matches(body))
            .map(|(i, _)| TemplateId(i as u32))
            .collect()
    }

    /// Returns all log statements that use the given template.
    pub fn log_stmts_of_template(&self, template: TemplateId) -> Vec<StmtRef> {
        self.all_stmts()
            .filter(|(_, s)| matches!(s, Stmt::Log { template: t, .. } if *t == template))
            .map(|(r, _)| r)
            .collect()
    }
}
