//! Typed identifiers for IR entities.
//!
//! Every entity in a [`crate::Program`] is referred to by a dense `u32`
//! index wrapped in a newtype, so that indices of different entity kinds
//! cannot be confused. All ids are only meaningful relative to the program
//! that allocated them.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index as a `usize` for table lookups.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Index of a function in [`crate::Program::funcs`].
    FuncId
);
define_id!(
    /// Index of a statement block in [`crate::Program::blocks`].
    BlockId
);
define_id!(
    /// Slot of a function-local variable.
    VarId
);
define_id!(
    /// Slot of a per-node global variable.
    GlobalId
);
define_id!(
    /// Index of a static fault site in [`crate::Program::sites`].
    SiteId
);
define_id!(
    /// Index of a log template in [`crate::Program::templates`].
    TemplateId
);
define_id!(
    /// Index of a per-node message channel.
    ChanId
);
define_id!(
    /// Index of a per-node condition variable.
    CondId
);
define_id!(
    /// Index of a per-node single-threaded task executor.
    ExecId
);

/// Location of a statement: a block plus the statement's index within it.
///
/// `StmtRef` uniquely identifies any statement in a program because every
/// block is owned by exactly one structural parent (function entry, branch,
/// loop body, try body, handler, or finally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtRef {
    /// The block containing the statement.
    pub block: BlockId,
    /// Zero-based position of the statement within the block.
    pub idx: u32,
}

impl StmtRef {
    /// Creates a statement reference.
    pub fn new(block: BlockId, idx: u32) -> Self {
        Self { block, idx }
    }
}

impl std::fmt::Display for StmtRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}:{}", self.block.0, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = SiteId(1);
        let b = SiteId(2);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(SiteId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn stmt_ref_display_is_compact() {
        let r = StmtRef::new(BlockId(3), 7);
        assert_eq!(r.to_string(), "b3:7");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(FuncId(9).index(), 9);
        assert_eq!(BlockId(0).index(), 0);
    }
}
