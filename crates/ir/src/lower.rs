//! Lowering: compiles a [`Program`] into a flat, index-resolved instruction
//! stream for the register-VM executor in `anduril-sim`.
//!
//! The tree-walking interpreter re-traverses `Expr` trees and re-resolves
//! template/handler metadata on every execution of every statement. Because
//! the Explorer replays the same program thousands of times per search, that
//! per-step overhead dominates reproduction time (the paper's §7 measures
//! reproduction cost as run count × run cost). Lowering moves all of it to a
//! once-per-program compile:
//!
//! - every statement becomes one [`Instr`] in a single flat array, addressed
//!   by `stmt_base[block] + idx` (so a [`StmtRef`] maps to an index with two
//!   adds, no nested `Vec` walks);
//! - every expression tree becomes a run of register ops ([`EOp`]) with the
//!   result in a fixed output register; the register file is allocated once
//!   per run and reused across statements, so evaluation allocates nothing;
//! - literals live in a constant pool; log templates are pre-split into
//!   text/argument segments so bodies render into a single `String` with no
//!   intermediate per-argument strings;
//! - names that the simulator emits repeatedly (spawned-thread names,
//!   executor worker names) are interned as `Arc<str>`;
//! - `try`/`catch`/`finally` metadata and the meta-info access-point set are
//!   pre-resolved into flat lookup tables shared by both engines.
//!
//! Lowering is purely structural: it never reorders or elides effects, so a
//! VM run draws random numbers, counts steps, and emits log entries in
//! exactly the same order as the tree-walking oracle.

use std::sync::Arc;

use crate::expr::{BinOp, Expr};
use crate::ids::{
    BlockId, ChanId, CondId, ExecId, FuncId, GlobalId, SiteId, StmtRef, TemplateId, VarId,
};
use crate::log::Level;
use crate::program::Program;
use crate::stmt::{Handler, Stmt};
use crate::value::Value;

/// A compiled expression: a run of [`EOp`]s in [`CompiledProgram::eops`]
/// leaving the result in register `out`.
#[derive(Debug, Clone, Copy)]
pub struct CExpr {
    /// Start of the op run (index into [`CompiledProgram::eops`]).
    pub start: u32,
    /// End of the op run (exclusive).
    pub end: u32,
    /// Register holding the result after the run executes.
    pub out: u16,
    /// Compile-time shape summary; lets the executor answer the most
    /// common trivial expressions without touching the register file.
    pub fast: FastExpr,
}

/// The shapes a [`CExpr`] can be collapsed to at compile time.
///
/// Most conditions, assignments, and sleep durations are a single load or
/// a single comparison over loads; tagging them here lets the executor
/// resolve the value directly from the frame/globals/pool instead of
/// running the op loop. `Load` and `Bin` are side-effect-free (no RNG
/// draws), so skipping the register run cannot perturb determinism.
#[derive(Debug, Clone, Copy)]
pub enum FastExpr {
    /// No shortcut: run the op loop.
    None,
    /// The whole expression is one simple load.
    Load(Operand),
    /// The whole expression is one fused binary over simple loads.
    Bin(BinOp, Operand, Operand),
}

/// A side-effect-free operand source for [`EOp::BinRef`], resolved at
/// compile time so the executor reads the value by reference.
#[derive(Debug, Clone, Copy)]
pub enum Operand {
    /// The current frame's local slot (reads as `Unit` with no frame).
    Var(u32),
    /// The current node's global slot.
    Global(u32),
    /// A constant-pool entry.
    Const(u32),
}

/// One register-VM expression op. Operands are registers in the per-run
/// scratch frame; `dst` is always written.
#[derive(Debug, Clone)]
pub enum EOp {
    /// `dst = pool[idx]` (clone from the constant pool).
    Const {
        /// Destination register.
        dst: u16,
        /// Index into [`CompiledProgram::pool`].
        idx: u32,
    },
    /// `dst = locals[var]` of the current frame (`Unit` with no frame).
    Var {
        /// Destination register.
        dst: u16,
        /// Local slot index.
        var: u32,
    },
    /// `dst = globals[global]` of the current node.
    Global {
        /// Destination register.
        dst: u16,
        /// Global slot index.
        global: u32,
    },
    /// `dst = !src` (type error on non-bool).
    Not {
        /// Destination register.
        dst: u16,
        /// Operand register.
        src: u16,
    },
    /// `dst = len(src)` (type error on non-list/string).
    Len {
        /// Destination register.
        dst: u16,
        /// Operand register.
        src: u16,
    },
    /// `dst = [srcs...]`; the item registers are moved, not cloned.
    Gather {
        /// Destination register.
        dst: u16,
        /// Item registers in order.
        srcs: Box<[u16]>,
    },
    /// `dst = src[idx]` where `src` is a register holding a list.
    Index {
        /// Destination register.
        dst: u16,
        /// Register holding the list.
        src: u16,
        /// Element index.
        idx: u32,
    },
    /// `dst = locals[var][idx]` — fused borrow form of `Index(Var(_))` that
    /// clones only the element, never the whole list.
    IndexVar {
        /// Destination register.
        dst: u16,
        /// Local slot index.
        var: u32,
        /// Element index.
        idx: u32,
    },
    /// `dst = globals[global][idx]` — fused borrow form of
    /// `Index(Global(_))`.
    IndexGlobal {
        /// Destination register.
        dst: u16,
        /// Global slot index.
        global: u32,
        /// Element index.
        idx: u32,
    },
    /// `dst = rand_range(lo, hi)` drawn from the run's seeded generator
    /// (returns `lo` when the range is empty, like the tree-walk).
    Rand {
        /// Destination register.
        dst: u16,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// `dst = <current node name>` as a string value (refcount bump only).
    SelfNode {
        /// Destination register.
        dst: u16,
    },
    /// Non-short-circuit binary op: `dst = a <op> b`.
    Bin {
        /// Destination register.
        dst: u16,
        /// The operator (never `And`/`Or`; those lower to [`EOp::SkipIf`]).
        op: BinOp,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// Fused binary op over simple operands: both sides are read by
    /// reference straight from locals/globals/pool — no clones, no
    /// intermediate registers, one dispatch instead of three. Loading a
    /// variable, global, or constant has no side effects (in particular no
    /// RNG draws), so fusing preserves the tree-walk's evaluation order
    /// exactly.
    BinRef {
        /// Destination register.
        dst: u16,
        /// The operator (never `And`/`Or`).
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src as bool` (type error with the tree-walk's
    /// `expected bool, got ...` message otherwise).
    AsBool {
        /// Destination register.
        dst: u16,
        /// Operand register.
        src: u16,
    },
    /// Skip the next `skip` ops when `src` holds `Bool(if_val)` — the
    /// lowering of `&&` / `||` short-circuiting. Skipped ops draw no random
    /// numbers, preserving the oracle's RNG stream.
    SkipIf {
        /// Register tested (already coerced to bool by [`EOp::AsBool`]).
        src: u16,
        /// Skip when the register equals this boolean.
        if_val: bool,
        /// Number of following ops to skip.
        skip: u32,
    },
}

/// One lowered statement. Mirrors [`Stmt`] with expressions compiled to
/// [`CExpr`] runs and names/ids pre-resolved.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Emit a log entry.
    Log {
        /// Severity.
        level: Level,
        /// Source template (for the structured entry).
        template: TemplateId,
        /// Compiled argument expressions.
        args: Box<[CExpr]>,
        /// Whether to attach the pending handler exception's stack.
        attach_stack: bool,
        /// Pre-rendered body for zero-argument templates.
        pre: Option<Box<str>>,
    },
    /// `locals[var] = e`.
    Assign {
        /// Destination local.
        var: VarId,
        /// Compiled value expression.
        e: CExpr,
    },
    /// `globals[global] = e`.
    SetGlobal {
        /// Destination global.
        global: GlobalId,
        /// Compiled value expression.
        e: CExpr,
    },
    /// Append `e` to a list-valued global.
    PushBack {
        /// The queue global.
        global: GlobalId,
        /// Compiled value expression.
        e: CExpr,
    },
    /// Pop the front of a list-valued global into a local.
    PopFront {
        /// The queue global.
        global: GlobalId,
        /// Destination local.
        var: VarId,
    },
    /// Synchronous call on the same thread.
    Call {
        /// Callee.
        func: FuncId,
        /// Compiled actual arguments.
        args: Box<[CExpr]>,
        /// Local receiving the return value.
        ret: Option<VarId>,
    },
    /// External-exception fault site.
    External {
        /// The fault site.
        site: SiteId,
    },
    /// New-exception fault site (`throw new`).
    ThrowNew {
        /// The fault site.
        site: SiteId,
    },
    /// Rethrow the nearest handler's exception.
    Rethrow,
    /// Two-way branch.
    If {
        /// Compiled condition.
        cond: CExpr,
        /// Then block.
        then_blk: BlockId,
        /// Else block, if present.
        else_blk: Option<BlockId>,
    },
    /// Pre-tested loop.
    While {
        /// Compiled condition.
        cond: CExpr,
        /// Loop body.
        body: BlockId,
    },
    /// Exception-handling region; handlers/finally live in the try table.
    Try {
        /// The protected body.
        body: BlockId,
    },
    /// Return from the current function.
    Return {
        /// Compiled return value (`None` returns unit).
        e: Option<CExpr>,
    },
    /// Exit the nearest loop.
    Break,
    /// Next iteration of the nearest loop.
    Continue,
    /// Spawn a thread on the current node.
    Spawn {
        /// Interned thread base name.
        name: Arc<str>,
        /// Entry function.
        func: FuncId,
        /// Compiled arguments.
        args: Box<[CExpr]>,
    },
    /// Submit a task to an executor.
    Submit {
        /// Target executor.
        exec: ExecId,
        /// Task body.
        func: FuncId,
        /// Compiled arguments.
        args: Box<[CExpr]>,
        /// Local receiving the future handle.
        future: Option<VarId>,
    },
    /// Block until a future completes.
    Await {
        /// Local holding the future handle.
        future: VarId,
        /// Compiled timeout in ticks.
        timeout: Option<CExpr>,
        /// Local receiving the task's return value.
        ret: Option<VarId>,
    },
    /// Send a message to `(node, chan)`.
    Send {
        /// Compiled destination node name.
        dest: CExpr,
        /// Destination channel.
        chan: ChanId,
        /// Compiled payload.
        payload: CExpr,
    },
    /// Block until a message arrives on `chan`.
    Recv {
        /// Source channel.
        chan: ChanId,
        /// Local receiving the payload.
        var: VarId,
        /// Compiled timeout in ticks.
        timeout: Option<CExpr>,
    },
    /// Wait on a condition variable.
    WaitCond {
        /// The condition variable.
        cond: CondId,
        /// Compiled timeout in ticks.
        timeout: Option<CExpr>,
        /// Local receiving the signalled-vs-timed-out flag.
        ok: Option<VarId>,
    },
    /// Wake every waiter on a condition variable.
    SignalCond {
        /// The condition variable.
        cond: CondId,
    },
    /// Suspend the thread.
    Sleep {
        /// Compiled duration in ticks.
        ticks: CExpr,
    },
    /// Abort the current node.
    Abort {
        /// Abort reason for the log entry.
        reason: Box<str>,
    },
    /// End the current thread normally.
    Halt,
}

/// Pre-resolved `catch`/`finally` metadata of one `try` statement.
#[derive(Debug, Clone)]
pub struct TryInfo {
    /// Catch clauses, in order.
    pub handlers: Box<[Handler]>,
    /// Optional finally block.
    pub finally: Option<BlockId>,
}

/// One segment of a pre-split log template.
#[derive(Debug, Clone)]
pub enum Seg {
    /// Literal text between holes.
    Text(Box<str>),
    /// The n-th `{}` hole (missing arguments render as `?`).
    Arg(u16),
}

/// A log template pre-split into text and argument segments, so the VM
/// renders bodies into one `String` without per-argument intermediates.
#[derive(Debug, Clone)]
pub struct CompiledTemplate {
    /// The segments in order.
    pub segs: Box<[Seg]>,
    /// Length of the literal text (render capacity hint).
    pub text_len: usize,
}

/// A [`Program`] lowered to the flat register-VM form. Compile once per
/// search (the `SearchContext` caches it), run many times.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// One instruction per statement, flattened block-major: the statement
    /// `StmtRef { block, idx }` lives at `stmt_base[block] + idx`.
    pub code: Vec<Instr>,
    /// Per-block offset of the first instruction in [`CompiledProgram::code`].
    pub stmt_base: Vec<u32>,
    /// Per-block statement count.
    pub block_len: Vec<u32>,
    /// All expression ops, referenced by [`CExpr`] ranges.
    pub eops: Vec<EOp>,
    /// Constant pool for [`EOp::Const`].
    pub pool: Vec<Value>,
    /// Size of the scratch register frame a run must allocate.
    pub max_regs: usize,
    /// Pre-split log templates, parallel to `Program::templates`.
    pub templates: Vec<CompiledTemplate>,
    /// Interned worker-thread names (`"{exec}-worker"`), parallel to
    /// `Program::execs`.
    pub worker_names: Vec<Arc<str>>,
    /// Interned global-variable names, parallel to `Program::globals`, so
    /// per-run result snapshots share one allocation per name.
    pub global_names: Vec<Arc<str>>,
    /// Statements that touch a meta-info global, sorted (CrashTuner's
    /// candidate crash points).
    pub meta_points: Vec<StmtRef>,
    tries: Vec<TryInfo>,
    /// Per-instruction index into `tries` (`u32::MAX` for non-`try`).
    try_of: Vec<u32>,
    /// Bitset over flat instruction indices marking meta access points.
    meta_bits: Vec<u64>,
}

const NO_TRY: u32 = u32::MAX;

impl CompiledProgram {
    /// Maps a statement reference to its flat instruction index.
    #[inline]
    pub fn flat(&self, r: StmtRef) -> usize {
        self.stmt_base[r.block.index()] as usize + r.idx as usize
    }

    /// Returns the pre-resolved handler/finally table of a `try` statement,
    /// or `None` if `r` is not a `try`.
    #[inline]
    pub fn try_info(&self, r: StmtRef) -> Option<&TryInfo> {
        let t = self.try_of[self.flat(r)];
        if t == NO_TRY {
            None
        } else {
            Some(&self.tries[t as usize])
        }
    }

    /// Returns the finally block of a `try` statement, if any.
    #[inline]
    pub fn try_finally(&self, r: StmtRef) -> Option<BlockId> {
        self.try_info(r).and_then(|t| t.finally)
    }

    /// Returns `true` if the flat instruction index is a meta access point.
    #[inline]
    pub fn is_meta(&self, flat: usize) -> bool {
        (self.meta_bits[flat >> 6] >> (flat & 63)) & 1 == 1
    }
}

/// Statements whose execution touches a meta-info global — CrashTuner's
/// candidate crash points, in deterministic (sorted) order.
pub fn meta_access_points(program: &Program) -> Vec<StmtRef> {
    let meta: Vec<bool> = program.globals.iter().map(|g| g.meta_info).collect();
    if !meta.iter().any(|m| *m) {
        return Vec::new();
    }
    let mut points = Vec::new();
    for (sref, stmt) in program.all_stmts() {
        let mut exprs: Vec<&Expr> = Vec::new();
        let mut writes_meta = false;
        match stmt {
            Stmt::SetGlobal { global, expr } | Stmt::PushBack { global, expr } => {
                writes_meta = meta[global.index()];
                exprs.push(expr);
            }
            Stmt::PopFront { global, .. } => {
                writes_meta = meta[global.index()];
            }
            Stmt::Assign { expr, .. } => exprs.push(expr),
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => exprs.push(cond),
            _ => {}
        }
        let reads_meta = exprs.iter().any(|e| {
            let mut vars = Vec::new();
            let mut globals = Vec::new();
            e.reads(&mut vars, &mut globals);
            globals.iter().any(|g| meta[g.index()])
        });
        if writes_meta || reads_meta {
            points.push(sref);
        }
    }
    points.sort_unstable();
    points
}

struct ExprCompiler<'p> {
    eops: Vec<EOp>,
    pool: Vec<Value>,
    next_reg: u16,
    max_regs: usize,
    program: &'p Program,
}

impl ExprCompiler<'_> {
    fn alloc(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("statement uses more than 65535 registers");
        if self.next_reg as usize > self.max_regs {
            self.max_regs = self.next_reg as usize;
        }
        r
    }

    /// Compiles one expression tree; the emitted ops evaluate sub-expressions
    /// in exactly the tree-walk's order (so RNG draws and error precedence
    /// are preserved).
    fn compile(&mut self, e: &Expr) -> u16 {
        match e {
            Expr::Const(v) => {
                let dst = self.alloc();
                let idx = self.pool.len() as u32;
                self.pool.push(v.clone());
                self.eops.push(EOp::Const { dst, idx });
                dst
            }
            Expr::Var(v) => {
                let dst = self.alloc();
                self.eops.push(EOp::Var {
                    dst,
                    var: v.index() as u32,
                });
                dst
            }
            Expr::Global(g) => {
                let dst = self.alloc();
                self.eops.push(EOp::Global {
                    dst,
                    global: g.index() as u32,
                });
                dst
            }
            Expr::Not(a) => {
                let src = self.compile(a);
                let dst = self.alloc();
                self.eops.push(EOp::Not { dst, src });
                dst
            }
            Expr::Len(a) => {
                let src = self.compile(a);
                let dst = self.alloc();
                self.eops.push(EOp::Len { dst, src });
                dst
            }
            Expr::List(items) => {
                let srcs: Box<[u16]> = items.iter().map(|i| self.compile(i)).collect();
                let dst = self.alloc();
                self.eops.push(EOp::Gather { dst, srcs });
                dst
            }
            Expr::Index(a, i) => match a.as_ref() {
                // Borrow-fused forms: index the variable in place and clone
                // only the element, instead of cloning the whole list first.
                Expr::Var(v) => {
                    let dst = self.alloc();
                    self.eops.push(EOp::IndexVar {
                        dst,
                        var: v.index() as u32,
                        idx: *i,
                    });
                    dst
                }
                Expr::Global(g) => {
                    let dst = self.alloc();
                    self.eops.push(EOp::IndexGlobal {
                        dst,
                        global: g.index() as u32,
                        idx: *i,
                    });
                    dst
                }
                _ => {
                    let src = self.compile(a);
                    let dst = self.alloc();
                    self.eops.push(EOp::Index { dst, src, idx: *i });
                    dst
                }
            },
            Expr::RandRange(lo, hi) => {
                let dst = self.alloc();
                self.eops.push(EOp::Rand {
                    dst,
                    lo: *lo,
                    hi: *hi,
                });
                dst
            }
            Expr::SelfNode => {
                let dst = self.alloc();
                self.eops.push(EOp::SelfNode { dst });
                dst
            }
            Expr::Bin(op @ (BinOp::And | BinOp::Or), a, b) => {
                // Lower `a && b` / `a || b` to a conditional skip over the
                // right operand's ops, mirroring the tree-walk's
                // short-circuit (skipped ops draw no random numbers).
                let ra = self.compile(a);
                let dst = self.alloc();
                self.eops.push(EOp::AsBool { dst, src: ra });
                let skip_at = self.eops.len();
                self.eops.push(EOp::SkipIf {
                    src: dst,
                    if_val: matches!(op, BinOp::Or),
                    skip: 0,
                });
                let rb = self.compile(b);
                self.eops.push(EOp::AsBool { dst, src: rb });
                let skip = (self.eops.len() - skip_at - 1) as u32;
                if let EOp::SkipIf { skip: s, .. } = &mut self.eops[skip_at] {
                    *s = skip;
                }
                dst
            }
            // Peephole fusion: when both operands are simple loads, emit one
            // `BinRef` that reads them by reference (the dominant shape for
            // branch conditions: `var <op> const`, `var <op> var`, ...).
            Expr::Bin(op, a, b) if Self::is_simple(a) && Self::is_simple(b) => {
                let a = self.operand(a);
                let b = self.operand(b);
                let dst = self.alloc();
                self.eops.push(EOp::BinRef { dst, op: *op, a, b });
                dst
            }
            Expr::Bin(op, a, b) => {
                let ra = self.compile(a);
                let rb = self.compile(b);
                let dst = self.alloc();
                self.eops.push(EOp::Bin {
                    dst,
                    op: *op,
                    a: ra,
                    b: rb,
                });
                dst
            }
        }
    }

    /// True when the expression is a fusable side-effect-free load.
    fn is_simple(e: &Expr) -> bool {
        matches!(e, Expr::Var(_) | Expr::Global(_) | Expr::Const(_))
    }

    /// Converts a simple load into a [`BinRef`](EOp::BinRef) operand,
    /// interning constants into the pool.
    fn operand(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Var(v) => Operand::Var(v.index() as u32),
            Expr::Global(g) => Operand::Global(g.index() as u32),
            Expr::Const(v) => {
                let idx = self.pool.len() as u32;
                self.pool.push(v.clone());
                Operand::Const(idx)
            }
            _ => unreachable!("operand() is only called on is_simple exprs"),
        }
    }

    fn cexpr(&mut self, e: &Expr) -> CExpr {
        let start = self.eops.len() as u32;
        let out = self.compile(e);
        let end = self.eops.len() as u32;
        let fast = if end - start == 1 {
            match &self.eops[start as usize] {
                EOp::Const { idx, .. } => FastExpr::Load(Operand::Const(*idx)),
                EOp::Var { var, .. } => FastExpr::Load(Operand::Var(*var)),
                EOp::Global { global, .. } => FastExpr::Load(Operand::Global(*global)),
                EOp::BinRef { op, a, b, .. } => FastExpr::Bin(*op, *a, *b),
                _ => FastExpr::None,
            }
        } else {
            FastExpr::None
        };
        CExpr {
            start,
            end,
            out,
            fast,
        }
    }

    fn cexprs(&mut self, es: &[Expr]) -> Box<[CExpr]> {
        es.iter().map(|e| self.cexpr(e)).collect()
    }
}

/// Compiles a program into its flat register-VM form.
pub fn compile(program: &Program) -> CompiledProgram {
    let n_stmts: usize = program.blocks.iter().map(Vec::len).sum();
    let mut stmt_base = Vec::with_capacity(program.blocks.len());
    let mut block_len = Vec::with_capacity(program.blocks.len());
    let mut base = 0u32;
    for b in &program.blocks {
        stmt_base.push(base);
        block_len.push(b.len() as u32);
        base += b.len() as u32;
    }

    let mut c = ExprCompiler {
        eops: Vec::new(),
        pool: Vec::new(),
        next_reg: 0,
        max_regs: 0,
        program,
    };
    let mut code = Vec::with_capacity(n_stmts);
    let mut tries = Vec::new();
    let mut try_of = vec![NO_TRY; n_stmts];

    for block in &program.blocks {
        for stmt in block {
            // Registers are scratch within one statement: every statement
            // starts from register 0 and the frame is sized to the widest.
            c.next_reg = 0;
            let flat = code.len();
            let instr = match stmt {
                Stmt::Log {
                    level,
                    template,
                    args,
                    attach_stack,
                } => {
                    let cargs = c.cexprs(args);
                    let pre = if cargs.is_empty() {
                        Some(
                            c.program.templates[template.index()]
                                .render(&[])
                                .into_boxed_str(),
                        )
                    } else {
                        None
                    };
                    Instr::Log {
                        level: *level,
                        template: *template,
                        args: cargs,
                        attach_stack: *attach_stack,
                        pre,
                    }
                }
                Stmt::Assign { var, expr } => Instr::Assign {
                    var: *var,
                    e: c.cexpr(expr),
                },
                Stmt::SetGlobal { global, expr } => Instr::SetGlobal {
                    global: *global,
                    e: c.cexpr(expr),
                },
                Stmt::PushBack { global, expr } => Instr::PushBack {
                    global: *global,
                    e: c.cexpr(expr),
                },
                Stmt::PopFront { global, var } => Instr::PopFront {
                    global: *global,
                    var: *var,
                },
                Stmt::Call { func, args, ret } => Instr::Call {
                    func: *func,
                    args: c.cexprs(args),
                    ret: *ret,
                },
                Stmt::External { site } => Instr::External { site: *site },
                Stmt::ThrowNew { site } => Instr::ThrowNew { site: *site },
                Stmt::Rethrow => Instr::Rethrow,
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => Instr::If {
                    cond: c.cexpr(cond),
                    then_blk: *then_blk,
                    else_blk: *else_blk,
                },
                Stmt::While { cond, body } => Instr::While {
                    cond: c.cexpr(cond),
                    body: *body,
                },
                Stmt::Try {
                    body,
                    handlers,
                    finally,
                } => {
                    try_of[flat] = tries.len() as u32;
                    tries.push(TryInfo {
                        handlers: handlers.clone().into_boxed_slice(),
                        finally: *finally,
                    });
                    Instr::Try { body: *body }
                }
                Stmt::Return { expr } => Instr::Return {
                    e: expr.as_ref().map(|e| c.cexpr(e)),
                },
                Stmt::Break => Instr::Break,
                Stmt::Continue => Instr::Continue,
                Stmt::Spawn { name, func, args } => Instr::Spawn {
                    name: Arc::from(name.as_str()),
                    func: *func,
                    args: c.cexprs(args),
                },
                Stmt::Submit {
                    exec,
                    func,
                    args,
                    future,
                } => Instr::Submit {
                    exec: *exec,
                    func: *func,
                    args: c.cexprs(args),
                    future: *future,
                },
                Stmt::Await {
                    future,
                    timeout,
                    ret,
                } => Instr::Await {
                    future: *future,
                    timeout: timeout.as_ref().map(|e| c.cexpr(e)),
                    ret: *ret,
                },
                Stmt::Send {
                    node,
                    chan,
                    payload,
                } => Instr::Send {
                    dest: c.cexpr(node),
                    chan: *chan,
                    payload: c.cexpr(payload),
                },
                Stmt::Recv { chan, var, timeout } => Instr::Recv {
                    chan: *chan,
                    var: *var,
                    timeout: timeout.as_ref().map(|e| c.cexpr(e)),
                },
                Stmt::WaitCond { cond, timeout, ok } => Instr::WaitCond {
                    cond: *cond,
                    timeout: timeout.as_ref().map(|e| c.cexpr(e)),
                    ok: *ok,
                },
                Stmt::SignalCond { cond } => Instr::SignalCond { cond: *cond },
                Stmt::Sleep { ticks } => Instr::Sleep {
                    ticks: c.cexpr(ticks),
                },
                Stmt::Abort { reason } => Instr::Abort {
                    reason: reason.clone().into_boxed_str(),
                },
                Stmt::Halt => Instr::Halt,
            };
            code.push(instr);
        }
    }

    let templates = program
        .templates
        .iter()
        .map(|t| {
            let mut segs = Vec::new();
            let mut text_len = 0;
            let mut rest = t.text.as_str();
            let mut arg = 0u16;
            while let Some(pos) = rest.find("{}") {
                if pos > 0 {
                    text_len += pos;
                    segs.push(Seg::Text(rest[..pos].into()));
                }
                segs.push(Seg::Arg(arg));
                arg += 1;
                rest = &rest[pos + 2..];
            }
            if !rest.is_empty() {
                text_len += rest.len();
                segs.push(Seg::Text(rest.into()));
            }
            CompiledTemplate {
                segs: segs.into_boxed_slice(),
                text_len,
            }
        })
        .collect();

    let worker_names = program
        .execs
        .iter()
        .map(|e| Arc::from(format!("{e}-worker").as_str()))
        .collect();

    let global_names = program
        .globals
        .iter()
        .map(|g| Arc::from(g.name.as_str()))
        .collect();

    let meta_points = meta_access_points(program);
    let mut meta_bits = vec![0u64; n_stmts.div_ceil(64)];
    for p in &meta_points {
        let flat = stmt_base[p.block.index()] as usize + p.idx as usize;
        meta_bits[flat >> 6] |= 1 << (flat & 63);
    }

    CompiledProgram {
        code,
        stmt_base,
        block_len,
        eops: c.eops,
        pool: c.pool,
        max_regs: c.max_regs,
        templates,
        worker_names,
        global_names,
        meta_points,
        tries,
        try_of,
        meta_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::build as e;

    #[test]
    fn flat_indexing_covers_every_statement() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare("main", 0);
        pb.body(main, |b| {
            let x = b.local();
            b.assign(x, e::int(1));
            b.if_(e::gt(e::var(x), e::int(0)), |b| {
                b.log(Level::Info, "pos {}", vec![e::var(x)]);
            });
        });
        let p = pb.finish().unwrap();
        let c = compile(&p);
        let n: usize = p.blocks.iter().map(Vec::len).sum();
        assert_eq!(c.code.len(), n);
        for (sref, _) in p.all_stmts() {
            assert!(c.flat(sref) < n);
        }
    }

    #[test]
    fn try_info_resolves_handlers_and_finally() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare("main", 0);
        pb.body(main, |b| {
            b.try_catch(
                |b| {
                    b.external("io", &[crate::ExceptionType::Io]);
                },
                crate::ExceptionType::Io,
                |b| {
                    b.log(Level::Warn, "caught", vec![]);
                },
            );
        });
        let p = pb.finish().unwrap();
        let c = compile(&p);
        let (tref, _) = p
            .all_stmts()
            .into_iter()
            .find(|(_, s)| matches!(s, Stmt::Try { .. }))
            .unwrap();
        let info = c.try_info(tref).expect("try has info");
        assert_eq!(info.handlers.len(), 1);
        assert_eq!(info.finally, None);
        // A non-try statement has no info.
        let (aref, _) = p
            .all_stmts()
            .into_iter()
            .find(|(_, s)| !matches!(s, Stmt::Try { .. }))
            .unwrap();
        assert!(c.try_info(aref).is_none());
    }

    #[test]
    fn short_circuit_lowers_to_skip() {
        let mut pb = ProgramBuilder::new("t");
        let main = pb.declare("main", 0);
        pb.body(main, |b| {
            let x = b.local();
            b.assign(x, e::and(e::bool_(false), e::bool_(true)));
        });
        let p = pb.finish().unwrap();
        let c = compile(&p);
        assert!(c.eops.iter().any(|op| matches!(op, EOp::SkipIf { .. })));
    }

    #[test]
    fn meta_bitset_matches_point_list() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.meta_global("leader", Value::Int(0));
        let main = pb.declare("main", 0);
        pb.body(main, |b| {
            b.set_global(g, e::int(1));
            b.log(Level::Info, "done", vec![]);
        });
        let p = pb.finish().unwrap();
        let c = compile(&p);
        assert!(!c.meta_points.is_empty());
        for (sref, _) in p.all_stmts() {
            assert_eq!(c.is_meta(c.flat(sref)), c.meta_points.contains(&sref));
        }
    }
}
