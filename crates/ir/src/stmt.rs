//! IR statements.
//!
//! Blocks are stored flat in [`crate::Program::blocks`]; structured
//! statements (`if`, `while`, `try`) reference child blocks by
//! [`BlockId`], which lets both the interpreter (explicit cursor stacks)
//! and the static analyses (parent maps, dominators) address any statement
//! with a plain [`crate::StmtRef`].

use crate::exception::ExceptionPattern;
use crate::expr::Expr;
use crate::ids::{BlockId, ChanId, CondId, ExecId, FuncId, GlobalId, SiteId, TemplateId, VarId};
use crate::log::Level;

/// One `catch` clause of a [`Stmt::Try`].
#[derive(Debug, Clone, PartialEq)]
pub struct Handler {
    /// Which exception types this clause catches.
    pub pattern: ExceptionPattern,
    /// The handler body.
    pub block: BlockId,
    /// Optional local variable bound to the caught exception value.
    pub bind: Option<VarId>,
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Emit a log message rendered from a template and argument expressions.
    Log {
        /// Severity.
        level: Level,
        /// The message template.
        template: TemplateId,
        /// Expressions substituted into the template's `{}` holes.
        args: Vec<Expr>,
        /// If `true` and an exception value is among the args (or one is
        /// pending in the enclosing handler), the rendered entry carries a
        /// stack trace, as Java loggers do for `log.warn(msg, throwable)`.
        attach_stack: bool,
    },
    /// Assign to a function-local variable.
    Assign {
        /// Destination slot.
        var: VarId,
        /// Value to store.
        expr: Expr,
    },
    /// Assign to a per-node global variable.
    SetGlobal {
        /// Destination global.
        global: GlobalId,
        /// Value to store.
        expr: Expr,
    },
    /// Append a value to a list-valued global (queue push).
    PushBack {
        /// The queue global.
        global: GlobalId,
        /// Value to append.
        expr: Expr,
    },
    /// Pop the front of a list-valued global into a local; stores
    /// [`crate::Value::Unit`] when the queue is empty.
    PopFront {
        /// The queue global.
        global: GlobalId,
        /// Destination local.
        var: VarId,
    },
    /// Synchronously invoke another IR function on the same thread.
    Call {
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Local receiving the return value, if any.
        ret: Option<VarId>,
    },
    /// An external library / OS / RPC-substrate call that may fail.
    ///
    /// This is an *external-exception* fault site: the fault-injection
    /// runtime traces every execution and may force it to throw one of the
    /// site's declared exception types.
    External {
        /// The fault site (metadata lives in [`crate::Program::sites`]).
        site: SiteId,
    },
    /// `throw new E(...)`: a *new-exception* fault site.
    ThrowNew {
        /// The fault site (metadata lives in [`crate::Program::sites`]).
        site: SiteId,
    },
    /// Rethrow the exception caught by the nearest enclosing handler.
    Rethrow,
    /// Two-way branch.
    If {
        /// The branch condition.
        cond: Expr,
        /// Block executed when the condition is true.
        then_blk: BlockId,
        /// Block executed when the condition is false, if present.
        else_blk: Option<BlockId>,
    },
    /// Pre-tested loop.
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: BlockId,
    },
    /// Exception-handling region.
    Try {
        /// The protected body.
        body: BlockId,
        /// Catch clauses, tried in order.
        handlers: Vec<Handler>,
        /// Optional finally block, run on both normal and exceptional exit.
        finally: Option<BlockId>,
    },
    /// Return from the current function.
    Return {
        /// Return value; `None` returns unit.
        expr: Option<Expr>,
    },
    /// Exit the nearest enclosing loop.
    Break,
    /// Jump to the next iteration of the nearest enclosing loop.
    Continue,
    /// Start a new thread on the current node running `func`.
    Spawn {
        /// Thread name (unique per node; an instance counter is appended on
        /// repeat spawns).
        name: String,
        /// Thread entry function.
        func: FuncId,
        /// Arguments passed to the entry function.
        args: Vec<Expr>,
    },
    /// Submit `func` as a task to a single-threaded executor, yielding a
    /// future handle.
    Submit {
        /// Target executor.
        exec: ExecId,
        /// Task body.
        func: FuncId,
        /// Arguments passed to the task.
        args: Vec<Expr>,
        /// Local receiving the [`crate::Value::Future`] handle.
        future: Option<VarId>,
    },
    /// Block until a future completes.
    ///
    /// If the task failed, throws [`crate::ExceptionType::Execution`] wrapping the
    /// task's exception; if `timeout` elapses first, throws
    /// [`crate::ExceptionType::Timeout`].
    Await {
        /// Local holding the future handle.
        future: VarId,
        /// Optional timeout in ticks.
        timeout: Option<Expr>,
        /// Local receiving the task's return value.
        ret: Option<VarId>,
    },
    /// Asynchronously send a message to `(node, chan)`; delivery latency is
    /// simulated.
    Send {
        /// Destination node name (a string-valued expression).
        node: Expr,
        /// Destination channel on that node.
        chan: ChanId,
        /// Message payload.
        payload: Expr,
    },
    /// Block until a message arrives on this node's `chan`.
    ///
    /// If `timeout` elapses first, throws [`crate::ExceptionType::Timeout`].
    Recv {
        /// Source channel.
        chan: ChanId,
        /// Local receiving the payload.
        var: VarId,
        /// Optional timeout in ticks.
        timeout: Option<Expr>,
    },
    /// Wait on a condition variable.
    ///
    /// With a timeout, stores `true` into `ok` if signalled and `false` on
    /// timeout (mirroring Java's `Condition.await(timeout)`); without one,
    /// blocks until signalled.
    WaitCond {
        /// The condition variable.
        cond: CondId,
        /// Optional timeout in ticks.
        timeout: Option<Expr>,
        /// Local receiving the signalled-vs-timed-out flag.
        ok: Option<VarId>,
    },
    /// Wake every thread waiting on a condition variable (`signalAll`).
    SignalCond {
        /// The condition variable.
        cond: CondId,
    },
    /// Suspend the thread for a number of ticks.
    Sleep {
        /// Sleep duration in ticks.
        ticks: Expr,
    },
    /// Abort the current node: every thread on it stops and an ABORT log
    /// entry is emitted (HBase-style `abort()`).
    Abort {
        /// Human-readable abort reason included in the log.
        reason: String,
    },
    /// End the current thread normally.
    Halt,
}

impl Stmt {
    /// Returns the fault site id if this statement is a fault site.
    pub fn site(&self) -> Option<SiteId> {
        match self {
            Stmt::External { site } | Stmt::ThrowNew { site } => Some(*site),
            _ => None,
        }
    }

    /// Returns the invoked function and the actual-argument expressions if
    /// this statement transfers control to another function (`Call`,
    /// `Submit`, or `Spawn`).
    ///
    /// The arguments are positional: `args[i]` is bound to the callee's
    /// parameter slot `VarId(i)`, which is what lets the interprocedural
    /// slicer jump from a parameter read out to every call site.
    pub fn invocation(&self) -> Option<(FuncId, &[Expr])> {
        match self {
            Stmt::Call { func, args, .. }
            | Stmt::Submit { func, args, .. }
            | Stmt::Spawn { func, args, .. } => Some((*func, args)),
            _ => None,
        }
    }

    /// Returns every expression this statement evaluates, in evaluation
    /// order. Used by the lints and the dataflow analysis to enumerate
    /// reads without matching each variant separately.
    pub fn exprs(&self) -> Vec<&Expr> {
        match self {
            Stmt::Log { args, .. } => args.iter().collect(),
            Stmt::Assign { expr, .. }
            | Stmt::SetGlobal { expr, .. }
            | Stmt::PushBack { expr, .. } => vec![expr],
            Stmt::Call { args, .. } | Stmt::Spawn { args, .. } | Stmt::Submit { args, .. } => {
                args.iter().collect()
            }
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => vec![cond],
            Stmt::Return { expr } => expr.iter().collect(),
            Stmt::Await { timeout, .. }
            | Stmt::Recv { timeout, .. }
            | Stmt::WaitCond { timeout, .. } => timeout.iter().collect(),
            Stmt::Send { node, payload, .. } => vec![node, payload],
            Stmt::Sleep { ticks } => vec![ticks],
            Stmt::PopFront { .. }
            | Stmt::External { .. }
            | Stmt::ThrowNew { .. }
            | Stmt::Rethrow
            | Stmt::Try { .. }
            | Stmt::Break
            | Stmt::Continue
            | Stmt::SignalCond { .. }
            | Stmt::Abort { .. }
            | Stmt::Halt => Vec::new(),
        }
    }

    /// Returns the child blocks this statement owns, with their roles.
    pub fn child_blocks(&self) -> Vec<(BlockId, crate::program::BlockRole)> {
        use crate::program::BlockRole;
        match self {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                let mut v = vec![(*then_blk, BlockRole::Then)];
                if let Some(e) = else_blk {
                    v.push((*e, BlockRole::Else));
                }
                v
            }
            Stmt::While { body, .. } => vec![(*body, BlockRole::LoopBody)],
            Stmt::Try {
                body,
                handlers,
                finally,
            } => {
                let mut v = vec![(*body, BlockRole::TryBody)];
                for (i, h) in handlers.iter().enumerate() {
                    v.push((h.block, BlockRole::Handler(i as u32)));
                }
                if let Some(f) = finally {
                    v.push((*f, BlockRole::Finally));
                }
                v
            }
            _ => Vec::new(),
        }
    }
}
