//! Property-style tests for templates, values, and exception patterns.
//!
//! Hand-rolled deterministic case generation (seeded SplitMix64) stands in
//! for `proptest`: the build environment is offline, so the suite carries
//! its own tiny generator instead of an external dependency.

use anduril_ir::log::LogTemplate;
use anduril_ir::{ExcValue, ExceptionPattern, ExceptionType, Value};

/// Deterministic generator for randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn string(&mut self, charset: &[u8], max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| charset[self.below(charset.len())] as char)
            .collect()
    }
}

/// Argument strings that cannot collide with template literals.
fn arg(rng: &mut Rng) -> String {
    rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789", 8)
}

/// Template fragments: literal text without `{}`.
fn fragment(rng: &mut Rng) -> String {
    rng.string(
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz ,.:-",
        10,
    )
}

/// Rendering a template and matching the result round-trips.
#[test]
fn render_then_match_round_trips() {
    let mut rng = Rng(1);
    for _ in 0..300 {
        let fragments: Vec<String> = (0..1 + rng.below(4)).map(|_| fragment(&mut rng)).collect();
        let text = fragments.join("{}");
        let template = LogTemplate { text };
        let arity = template.arity();
        let mut rendered_args: Vec<String> = (0..rng.below(4)).map(|_| arg(&mut rng)).collect();
        rendered_args.resize(arity, "x".to_string());
        let body = template.render(&rendered_args);
        assert!(
            template.matches(&body),
            "template {:?} does not match its own rendering {:?}",
            template.text,
            body
        );
    }
}

/// Arity counts the holes rendered.
#[test]
fn arity_equals_rendered_holes() {
    let mut rng = Rng(2);
    for _ in 0..300 {
        let fragments: Vec<String> = (0..1 + rng.below(5)).map(|_| fragment(&mut rng)).collect();
        let text = fragments.join("{}");
        let template = LogTemplate { text };
        assert_eq!(template.arity(), fragments.len() - 1);
    }
}

/// Value rendering never panics and is faithful for scalars.
#[test]
fn value_render_total() {
    let mut rng = Rng(3);
    for _ in 0..300 {
        let n = rng.next() as i64;
        let b = rng.next().is_multiple_of(2);
        let s = rng.string(
            b" !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ\
[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~",
            12,
        );
        assert_eq!(Value::Int(n).render(), n.to_string());
        assert_eq!(Value::Bool(b).render(), b.to_string());
        assert_eq!(Value::str(&s).render(), s);
        let list = Value::List(vec![Value::Int(n), Value::Bool(b)]);
        assert!(list.render().starts_with('['));
    }
}

/// `OneOf` behaves as the union of `Only` patterns.
#[test]
fn one_of_is_union() {
    let mut rng = Rng(4);
    for _ in 0..300 {
        let types: Vec<ExceptionType> = (0..1 + rng.below(4))
            .map(|_| ExceptionType::ALL[rng.below(9)])
            .collect();
        let multi = ExceptionPattern::OneOf(types.clone());
        let probe_ty = ExceptionType::ALL[rng.below(9)];
        let union = types
            .iter()
            .any(|&t| ExceptionPattern::Only(t).matches(probe_ty));
        assert_eq!(multi.matches(probe_ty), union);
    }
}

/// The root of a wrap chain is the innermost exception.
#[test]
fn wrap_chain_root_is_innermost() {
    let mut rng = Rng(5);
    for _ in 0..100 {
        let depth = rng.below(6);
        let root_ty = ExceptionType::ALL[rng.below(9)];
        let mut exc = ExcValue::new(root_ty);
        for _ in 0..depth {
            exc = ExcValue::wrapping(ExceptionType::Execution, exc);
        }
        assert_eq!(exc.root().ty, root_ty);
    }
}
