//! Property-based tests for templates, values, and exception patterns.

use anduril_ir::log::LogTemplate;
use anduril_ir::{ExcValue, ExceptionPattern, ExceptionType, Value};
use proptest::prelude::*;

/// Argument strings that cannot collide with template literals.
fn arg_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,8}"
}

/// Template fragments: literal text without `{}`.
fn fragment_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z ,.:-]{0,10}"
}

proptest! {
    /// Rendering a template and matching the result round-trips.
    #[test]
    fn render_then_match_round_trips(
        fragments in prop::collection::vec(fragment_strategy(), 1..5),
        args in prop::collection::vec(arg_strategy(), 0..4),
    ) {
        let text = fragments.join("{}");
        let template = LogTemplate { text };
        let arity = template.arity();
        let mut rendered_args: Vec<String> = args;
        rendered_args.resize(arity, "x".to_string());
        let body = template.render(&rendered_args);
        prop_assert!(
            template.matches(&body),
            "template {:?} does not match its own rendering {:?}",
            template.text,
            body
        );
    }

    /// Arity counts the holes rendered.
    #[test]
    fn arity_equals_rendered_holes(fragments in prop::collection::vec(fragment_strategy(), 1..6)) {
        let text = fragments.join("{}");
        let template = LogTemplate { text };
        prop_assert_eq!(template.arity(), fragments.len() - 1);
    }

    /// Value rendering never panics and is non-empty for non-unit values.
    #[test]
    fn value_render_total(n in any::<i64>(), b in any::<bool>(), s in "[ -~]{0,12}") {
        prop_assert_eq!(Value::Int(n).render(), n.to_string());
        prop_assert_eq!(Value::Bool(b).render(), b.to_string());
        prop_assert_eq!(Value::str(&s).render(), s);
        let list = Value::List(vec![Value::Int(n), Value::Bool(b)]);
        prop_assert!(list.render().starts_with('['));
    }

    /// `OneOf` behaves as the union of `Only` patterns.
    #[test]
    fn one_of_is_union(idx in prop::collection::vec(0usize..9, 1..5), probe in 0usize..9) {
        let types: Vec<ExceptionType> = idx.iter().map(|&i| ExceptionType::ALL[i]).collect();
        let multi = ExceptionPattern::OneOf(types.clone());
        let probe_ty = ExceptionType::ALL[probe];
        let union = types.iter().any(|&t| ExceptionPattern::Only(t).matches(probe_ty));
        prop_assert_eq!(multi.matches(probe_ty), union);
    }

    /// The root of a wrap chain is the innermost exception.
    #[test]
    fn wrap_chain_root_is_innermost(depth in 0usize..6, root_idx in 0usize..9) {
        let root_ty = ExceptionType::ALL[root_idx];
        let mut exc = ExcValue::new(root_ty);
        for _ in 0..depth {
            exc = ExcValue::wrapping(ExceptionType::Execution, exc);
        }
        prop_assert_eq!(exc.root().ty, root_ty);
    }
}
