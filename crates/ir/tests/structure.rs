//! Structural queries on built programs: parent maps, roles, lookups.

use anduril_ir::builder::ProgramBuilder;
use anduril_ir::expr::build as e;
use anduril_ir::{BlockRole, ExceptionPattern, ExceptionType, Level, Stmt, Value};

fn nested_program() -> anduril_ir::Program {
    let mut pb = ProgramBuilder::new("structure");
    let g = pb.global("g", Value::Int(0));
    let helper = pb.declare("helper", 1);
    let main = pb.declare("main", 0);
    pb.body(helper, |b| {
        b.ret(Some(e::add(e::var(b.param(0)), e::int(1))));
    });
    pb.body(main, |b| {
        let v = b.local();
        b.assign(v, e::int(0));
        b.while_(e::lt(e::var(v), e::int(3)), |b| {
            b.if_else(
                e::eq(e::rem(e::var(v), e::int(2)), e::int(0)),
                |b| {
                    b.try_catch(
                        |b| {
                            b.external("op", &[ExceptionType::Io]);
                        },
                        ExceptionPattern::Only(ExceptionType::Io),
                        |b| {
                            b.log(Level::Warn, "handled", vec![]);
                        },
                    );
                },
                |b| {
                    b.call_ret(helper, vec![e::var(v)], v);
                },
            );
            b.set_global(g, e::var(v));
            b.assign(v, e::add(e::var(v), e::int(1)));
        });
    });
    pb.finish().unwrap()
}

#[test]
fn block_parents_have_correct_roles() {
    let p = nested_program();
    let mut roles = std::collections::HashMap::new();
    for b in 0..p.blocks.len() {
        let parent = p.block_parent(anduril_ir::BlockId(b as u32));
        *roles
            .entry(std::mem::discriminant(&parent.role))
            .or_insert(0) += 1;
    }
    // Entry blocks: helper + main. Then/Else: one each. LoopBody: one.
    // TryBody: one. Handler: one.
    assert_eq!(
        roles[&std::mem::discriminant(&BlockRole::Entry)],
        2,
        "two function entries"
    );
    assert_eq!(roles[&std::mem::discriminant(&BlockRole::Then)], 1);
    assert_eq!(roles[&std::mem::discriminant(&BlockRole::Else)], 1);
    assert_eq!(roles[&std::mem::discriminant(&BlockRole::LoopBody)], 1);
    assert_eq!(roles[&std::mem::discriminant(&BlockRole::TryBody)], 1);
    assert_eq!(roles[&std::mem::discriminant(&BlockRole::Handler(0))], 1);
}

#[test]
fn every_statement_maps_to_its_function() {
    let p = nested_program();
    let main = p.func_named("main").unwrap();
    let helper = p.func_named("helper").unwrap();
    let mut main_stmts = 0;
    let mut helper_stmts = 0;
    for (sref, _) in p.all_stmts() {
        match p.func_of_stmt(sref) {
            f if f == main => main_stmts += 1,
            f if f == helper => helper_stmts += 1,
            other => panic!("statement in unknown function {other}"),
        }
    }
    assert!(main_stmts > helper_stmts);
    assert_eq!(helper_stmts, 1, "helper has a single return");
    assert_eq!(main_stmts + helper_stmts, p.stmt_count());
}

#[test]
fn template_lookup_by_text_and_matching() {
    let p = nested_program();
    let t = p.template_named("handled").unwrap();
    assert_eq!(p.templates_matching("handled"), vec![t]);
    assert_eq!(p.log_stmts_of_template(t).len(), 1);
    assert!(p.template_named("no such template").is_none());
    assert!(p.templates_matching("completely unknown body").is_empty());
}

#[test]
fn child_blocks_enumeration_matches_structure() {
    let p = nested_program();
    for (_, stmt) in p.all_stmts() {
        let children = stmt.child_blocks();
        match stmt {
            Stmt::If { else_blk, .. } => {
                assert_eq!(children.len(), 1 + usize::from(else_blk.is_some()));
            }
            Stmt::While { .. } => assert_eq!(children.len(), 1),
            Stmt::Try {
                handlers, finally, ..
            } => {
                assert_eq!(
                    children.len(),
                    1 + handlers.len() + usize::from(finally.is_some())
                );
            }
            _ => assert!(children.is_empty()),
        }
    }
}

#[test]
fn site_metadata_is_consistent() {
    let p = nested_program();
    assert_eq!(p.sites.len(), 1);
    let site = &p.sites[0];
    assert_eq!(site.desc, "op");
    assert_eq!(site.exceptions, vec![ExceptionType::Io]);
    // The site's statement lives inside a TryBody block.
    let parent = p.block_parent(site.stmt.block);
    assert_eq!(parent.role, BlockRole::TryBody);
}
