//! Seeded scenario generator with planted ground truth.
//!
//! The 22 hand-written failure cases pin the explorer to known bugs, but
//! they cannot answer "does the search still find root causes on systems
//! it was never tuned for?". This crate synthesizes random well-formed
//! IR programs (an order of magnitude larger than the hand minis),
//! plants a root-cause fault at a chosen `(site, occurrence)` — or a
//! two-fault cascade — derives the "production" failure log by actually
//! simulating the planted plan, and packages the result as a
//! [`FailureCase`] the existing explorer, baselines, analyze and trace
//! machinery consume unchanged.
//!
//! Ground truth is correct *by construction*: generated externals only
//! misbehave when the injector fires, so the fault-free run is healthy,
//! the planted run satisfies the oracle, and [`verify_sound`] checks the
//! plant additionally survives the search context's reachability pruning
//! and abstract occurrence bounds.
//!
//! [`FailureCase`]: anduril_failures::FailureCase

#![warn(missing_docs)]

pub mod grammar;
pub mod plant;

pub use grammar::{GenProgram, SizeClass};
pub use plant::{
    generate, generate_one, verify_sound, GenConfig, GenError, GeneratedCase, PlantedFault,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed → same case: ids, plants, logs, and stats all agree.
    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::new(42);
        let a = generate_one(&cfg, 3).expect("generate");
        let b = generate_one(&cfg, 3).expect("generate");
        assert_eq!(a.plant, b.plant);
        assert_eq!(a.failure_log, b.failure_log);
        assert_eq!(a.case.failure_seed, b.case.failure_seed);
        assert_eq!(a.stmts, b.stmts);
    }

    /// A single-fault case is sound end to end and resolves its own
    /// ground truth through the stock `FailureCase` machinery.
    #[test]
    fn single_fault_case_is_sound_and_resolvable() {
        let cfg = GenConfig::new(7);
        let gc = generate_one(&cfg, 0).expect("generate");
        assert_eq!(gc.plant.len(), 1);
        verify_sound(&gc).expect("sound");
        let gt = gc.case.ground_truth().expect("ground truth resolves");
        assert_eq!(gt.site, gc.plant[0].site);
        assert_eq!(gt.occurrence, gc.plant[0].occurrence);
        assert_eq!(gt.exc, gc.plant[0].exc);
    }

    /// A multi-fault case needs both injections: the pair satisfies the
    /// oracle, while either fault alone does not.
    #[test]
    fn multi_fault_case_requires_both_injections() {
        let cfg = GenConfig {
            multi_fault: true,
            ..GenConfig::new(11)
        };
        let gc = generate_one(&cfg, 0).expect("generate");
        assert_eq!(gc.plant.len(), 2);
        verify_sound(&gc).expect("sound");
        for f in &gc.plant {
            let solo = gc
                .case
                .scenario
                .run(
                    gc.case.failure_seed,
                    anduril_sim::InjectionPlan::exact(f.site, f.occurrence, f.exc),
                )
                .expect("solo run");
            assert!(
                !gc.case.oracle.check(&solo),
                "a single injection must not reproduce a two-fault cascade"
            );
        }
    }
}
