//! Fault planting, failure-log derivation, and soundness verification.
//!
//! The generator never *guesses* a ground truth: it plants one. A
//! synthesized program's critical handler only misbehaves when its
//! external site actually throws, and externals only throw when the
//! injector fires — so the fault-free run is healthy by construction,
//! and the failure log is *derived* by simulating the planted plan and
//! checking the oracle against the real result. What ships in a
//! [`GeneratedCase`] is therefore reproducible by definition, not by
//! hope.

use anduril_core::{Oracle, Scenario, SearchContext};
use anduril_failures::FailureCase;
use anduril_ir::{ExceptionType, SiteId};
use anduril_sim::rng::SmallRng;
use anduril_sim::{InjectionPlan, RunResult};

use crate::grammar::{synthesize, GenProgram, SizeClass};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Master seed; case `i` derives its own sub-seed from it.
    pub seed: u64,
    /// Program size class.
    pub size: SizeClass,
    /// Plant a two-fault cascade instead of a single fault.
    pub multi_fault: bool,
}

impl GenConfig {
    /// Small single-fault cases from a master seed.
    pub fn new(seed: u64) -> GenConfig {
        GenConfig {
            seed,
            size: SizeClass::Small,
            multi_fault: false,
        }
    }
}

/// One planted root-cause fault: inject `exc` at the `occurrence`-th
/// dynamic hit of `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedFault {
    /// Static fault site.
    pub site: SiteId,
    /// Zero-based dynamic occurrence index under the failure seed.
    pub occurrence: u32,
    /// Exception type injected.
    pub exc: ExceptionType,
}

/// A generated failure case: a [`FailureCase`] the existing explorer,
/// baselines, analyze and trace machinery consume unchanged, plus the
/// planted ground truth and the derived failure log.
#[derive(Debug, Clone)]
pub struct GeneratedCase {
    /// The packaged case (id `gen-NNNN`).
    pub case: FailureCase,
    /// The planted fault(s); length 2 in multi-fault mode.
    pub plant: Vec<PlantedFault>,
    /// Failure log derived by simulating the planted plan.
    pub failure_log: String,
    /// Node count.
    pub nodes: usize,
    /// Function count.
    pub funcs: usize,
    /// Static fault-site count.
    pub sites: usize,
    /// Statement count.
    pub stmts: usize,
    /// Advisory lint warnings the program carried (expected 0).
    pub warnings: usize,
}

impl GeneratedCase {
    /// The injection plan that reproduces the planted failure.
    pub fn plan(&self) -> InjectionPlan {
        if self.plant.len() == 1 {
            let f = self.plant[0];
            InjectionPlan::exact(f.site, f.occurrence, f.exc)
        } else {
            InjectionPlan::multi(
                self.plant
                    .iter()
                    .map(|f| anduril_sim::Candidate::exact(f.site, f.occurrence, f.exc))
                    .collect(),
            )
        }
    }

    /// Whether this case's root cause needs two coordinated injections.
    pub fn is_multi_fault(&self) -> bool {
        self.plant.len() > 1
    }
}

/// Generation errors. `Unsound` means a soundness invariant failed for
/// this seed — a generator bug, not a user error.
#[derive(Debug, Clone)]
pub enum GenError {
    /// The synthesized program failed IR validation (generator bug).
    Ir(String),
    /// A derivation run failed (step/time limits, internal error).
    Sim(String),
    /// A soundness invariant did not hold for this seed.
    Unsound(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Ir(e) => write!(f, "ir error: {e}"),
            GenError::Sim(e) => write!(f, "sim error: {e}"),
            GenError::Unsound(e) => write!(f, "unsound case: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

/// `&'static str` for a synthesized string. Generated cases flow into
/// [`FailureCase`], whose identity fields are `&'static str` (the 22
/// paper cases are compile-time literals); leaking the handful of short
/// id/description strings per generated case is deliberate and bounded
/// by the case count.
fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

fn site_by_desc(scenario: &Scenario, desc: &str) -> Result<SiteId, GenError> {
    scenario
        .program
        .sites
        .iter()
        .find(|s| s.desc == desc)
        .map(|s| s.id)
        .ok_or_else(|| GenError::Unsound(format!("planted site {desc} not in program")))
}

fn run(scenario: &Scenario, seed: u64, plan: InjectionPlan) -> Result<RunResult, GenError> {
    scenario
        .run(seed, plan)
        .map_err(|e| GenError::Sim(format!("{e:?}")))
}

/// Builds the oracle for a generated program: the FATAL needle, the
/// critical node's abort, and the root-cause handler's error needle.
fn oracle_for(gp: &GenProgram) -> Oracle {
    let mut parts = vec![
        Oracle::LogContains(gp.fatal_needle.clone()),
        Oracle::NodeAborted(gp.critical_node.clone()),
        Oracle::LogContains(format!("{} {}", gp.error_needle, gp.critical_node)),
    ];
    if let Some(poison) = &gp.poison_needle {
        parts.push(Oracle::LogContains(format!(
            "{} {}",
            poison, gp.critical_node
        )));
    }
    Oracle::And(parts)
}

/// Plants the single fault: scans occurrences of the critical site under
/// the failure seed until one satisfies the oracle (the phase gate makes
/// early occurrences recoverable), mirroring `FailureCase::ground_truth`
/// resolution so the packaged case resolves to exactly this plant.
fn plant_single(
    scenario: &Scenario,
    gp: &GenProgram,
    oracle: &Oracle,
    failure_seed: u64,
    normal: &RunResult,
) -> Result<(Vec<PlantedFault>, RunResult), GenError> {
    let site = site_by_desc(scenario, &gp.critical_site_desc)?;
    let total = normal
        .site_occurrences
        .get(site.index())
        .copied()
        .unwrap_or(0);
    if total == 0 {
        return Err(GenError::Unsound(format!(
            "critical site {} never reached fault-free",
            gp.critical_site_desc
        )));
    }
    for occ in 0..total {
        let r = run(
            scenario,
            failure_seed,
            InjectionPlan::exact(site, occ, gp.critical_exc),
        )?;
        if r.injected.is_some() && oracle.check(&r) {
            let plant = vec![PlantedFault {
                site,
                occurrence: occ,
                exc: gp.critical_exc,
            }];
            return Ok((plant, r));
        }
    }
    Err(GenError::Unsound(format!(
        "no occurrence of {} (0..{total}) satisfies the oracle",
        gp.critical_site_desc
    )))
}

/// Plants the two-fault cascade: picks an early occurrence for fault A
/// (the WAL poisoner), then scans fault B occurrences until the pair
/// fires completely and the oracle holds.
fn plant_multi(
    scenario: &Scenario,
    gp: &GenProgram,
    oracle: &Oracle,
    failure_seed: u64,
    normal: &RunResult,
    rng: &mut SmallRng,
) -> Result<(Vec<PlantedFault>, RunResult), GenError> {
    let site_b = site_by_desc(scenario, &gp.critical_site_desc)?;
    let desc_a = gp
        .poison_site_desc
        .as_deref()
        .ok_or_else(|| GenError::Unsound("multi-fault case lacks poison site".into()))?;
    let site_a = site_by_desc(scenario, desc_a)?;
    let total_a = normal
        .site_occurrences
        .get(site_a.index())
        .copied()
        .unwrap_or(0);
    let total_b = normal
        .site_occurrences
        .get(site_b.index())
        .copied()
        .unwrap_or(0);
    if total_a == 0 || total_b == 0 {
        return Err(GenError::Unsound(
            "a planted multi-fault site is unreachable fault-free".into(),
        ));
    }
    // Fault A early (first half of its fault-free occurrences) so B has
    // room to land after it. The fault-free timeline is undisturbed up
    // to A's firing, so any occ < total_a is guaranteed to fire.
    let occ_a = (rng.random_range(0..(total_a as u64 / 2).max(1))) as u32;
    // B's occurrence count can shift once A fires, so allow some slack
    // past the fault-free count.
    for occ_b in 0..(total_b + 16) {
        let plan = InjectionPlan::multi(vec![
            anduril_sim::Candidate::exact(site_a, occ_a, gp.poison_exc),
            anduril_sim::Candidate::exact(site_b, occ_b, gp.critical_exc),
        ]);
        let r = run(scenario, failure_seed, plan)?;
        if r.injected_all.len() == 2 && oracle.check(&r) {
            let plant = vec![
                PlantedFault {
                    site: site_a,
                    occurrence: occ_a,
                    exc: gp.poison_exc,
                },
                PlantedFault {
                    site: site_b,
                    occurrence: occ_b,
                    exc: gp.critical_exc,
                },
            ];
            return Ok((plant, r));
        }
    }
    Err(GenError::Unsound(format!(
        "no B occurrence pairs with A@{occ_a} to satisfy the oracle"
    )))
}

/// Generates case `index` of a batch: synthesizes a program from the
/// derived sub-seed, plants the fault(s), derives the failure log, and
/// packages a [`FailureCase`]. Soundness invariants checked here:
///
/// 1. `finish_linted` reports no errors (enforced in [`synthesize`]).
/// 2. The fault-free run completes, satisfies neither the oracle nor
///    kills any thread.
/// 3. The planted plan actually fires and satisfies the oracle (its run
///    *is* the failure log — ground truth by construction).
pub fn generate_one(cfg: &GenConfig, index: usize) -> Result<GeneratedCase, GenError> {
    let sub_seed = cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = SmallRng::seed_from_u64(sub_seed);
    let name = format!("gen-{index:04}");
    let gp = synthesize(&mut rng, &name, cfg.size, cfg.multi_fault)
        .map_err(|e| GenError::Ir(format!("{e:?}")))?;
    let scenario = Scenario {
        name: name.clone(),
        program: gp.program.clone(),
        topology: gp.topology.clone(),
        config: gp.config.clone(),
    };
    let failure_seed = 1 + rng.random_range(0..10_000u64);

    let normal = run(&scenario, failure_seed, InjectionPlan::none())?;
    let oracle = oracle_for(&gp);
    if oracle.check(&normal) {
        return Err(GenError::Unsound(
            "oracle already satisfied fault-free".into(),
        ));
    }
    if normal
        .log
        .iter()
        .any(|l| l.body.contains("Uncaught exception"))
    {
        return Err(GenError::Unsound(
            "fault-free run killed a thread with an uncaught exception".into(),
        ));
    }

    let (plant, failure_run) = if cfg.multi_fault {
        plant_multi(&scenario, &gp, &oracle, failure_seed, &normal, &mut rng)?
    } else {
        plant_single(&scenario, &gp, &oracle, failure_seed, &normal)?
    };
    let failure_log = failure_run.log_text();

    let case = FailureCase {
        id: leak(name.clone()),
        ticket: leak(format!("GEN-{}", sub_seed % 100_000)),
        system: "generated",
        description: leak(format!(
            "generated {} {}: {} nodes, {} sites, fault at {}",
            cfg.size,
            if cfg.multi_fault {
                "two-fault cascade"
            } else {
                "single fault"
            },
            gp.node_count(),
            scenario.program.sites.len(),
            gp.critical_site_desc,
        )),
        oracle,
        root_site_desc: leak(gp.critical_site_desc.clone()),
        root_exc: gp.critical_exc,
        failure_seed,
        deeper_causes: vec![],
        scenario,
    };

    Ok(GeneratedCase {
        nodes: gp.node_count(),
        funcs: case.scenario.program.funcs.len(),
        sites: case.scenario.program.sites.len(),
        stmts: case.scenario.program.stmt_count(),
        warnings: gp.warnings.len(),
        case,
        plant,
        failure_log,
    })
}

/// Generates a batch of `count` cases.
pub fn generate(cfg: &GenConfig, count: usize) -> Result<Vec<GeneratedCase>, GenError> {
    (0..count).map(|i| generate_one(cfg, i)).collect()
}

/// Deep soundness verification, used by the fuzz suite and the bench:
/// the fault-free run is healthy, the planted plan replays to the
/// oracle, and — for single-fault cases — the planted ground truth
/// survives the search context's reachability pruning and abstract
/// occurrence bounds (it must be discoverable, not just replayable).
pub fn verify_sound(gc: &GeneratedCase) -> Result<(), String> {
    if !gc
        .case
        .fault_free_run_is_healthy()
        .map_err(|e| format!("fault-free run: {e}"))?
    {
        return Err("fault-free run unexpectedly satisfies the oracle".into());
    }
    let replay = gc
        .case
        .scenario
        .run(gc.case.failure_seed, gc.plan())
        .map_err(|e| format!("planted replay: {e:?}"))?;
    if !gc.case.oracle.check(&replay) {
        return Err("planted plan no longer satisfies the oracle".into());
    }
    if replay.injected_all.len() != gc.plant.len() {
        return Err(format!(
            "planted plan fired {} of {} faults",
            replay.injected_all.len(),
            gc.plant.len()
        ));
    }
    let ctx = SearchContext::prepare(gc.case.scenario.clone(), &gc.failure_log, 1_000)
        .map_err(|e| format!("context prepare: {e:?}"))?;
    for f in &gc.plant {
        if !ctx.occurrence_feasible(f.site, Some(f.occurrence)) {
            return Err(format!(
                "occurrence bounds prune planted ({:?}, {})",
                f.site, f.occurrence
            ));
        }
    }
    if !gc.is_multi_fault() {
        let f = gc.plant[0];
        if !ctx.candidate_sites.contains(&f.site) {
            return Err(format!(
                "reachability pruning drops planted site {:?}",
                f.site
            ));
        }
    }
    Ok(())
}
