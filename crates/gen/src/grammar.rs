//! Random well-formed IR program synthesis.
//!
//! A blueprint is drawn first — every generation-time random choice
//! (node count, helper mix, exception types, gating percentages, the
//! critical node and helper) is fixed before a single statement is built,
//! so program shape is a pure function of the blueprint and the builder
//! calls below are fully deterministic. The emitted program follows a
//! ring topology:
//!
//! - `node{i}` runs `main` (spawns a listener and a monitor thread, then
//!   drives a worker loop inline and logs a summary reading every global),
//! - the worker loop calls a stack of helper functions (each wrapping an
//!   external fault site in a `try_catch`), submits a flush task to the
//!   node's executor and awaits it with a timeout, occasionally sends a
//!   message to the next node's ingest channel, and signals the node's
//!   tick condition,
//! - the listener drains the ingest channel with a recv timeout (wrapped
//!   in `try_catch` — recv timeouts *throw*), the monitor waits on the
//!   tick condition (wait-cond timeouts do not throw).
//!
//! Exactly one node is *critical*. In single-fault mode one of its
//! helpers, when its external site throws, marks the node degraded
//! (optionally only after a commit-count phase gate) and `main` ends the
//! run with a FATAL log plus `abort`. In multi-fault mode two helpers on
//! the critical node form a cascade: fault A poisons the WAL flag, and
//! fault B's failover check aborts only if the flag is already set — a
//! failure no single injection can produce.

use anduril_ir::builder::{BodyBuilder, ProgramBuilder};
use anduril_ir::program::LintWarning;
use anduril_ir::{
    expr as e, ChanId, CondId, ExceptionPattern, ExceptionType, Level, Program, Value,
};
use anduril_sim::rng::SmallRng;
use anduril_sim::{NodeSpec, SimConfig, Topology};

/// All nine exception types a generated external site may declare.
const EXCEPTIONS: [ExceptionType; 9] = [
    ExceptionType::Io,
    ExceptionType::Socket,
    ExceptionType::Timeout,
    ExceptionType::Interrupted,
    ExceptionType::FileNotFound,
    ExceptionType::Execution,
    ExceptionType::IllegalState,
    ExceptionType::Runtime,
    ExceptionType::Corruption,
];

/// Program size class: how many nodes, helpers per node, and worker-loop
/// iterations a generated scenario gets. `Small` matches the hand-written
/// minis; `Large` is roughly an order of magnitude past them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// 2–3 nodes, 3–5 helpers per node, 6–12 worker iterations.
    Small,
    /// 3–4 nodes, 6–10 helpers per node, 20–40 worker iterations.
    Medium,
    /// 4–6 nodes, 14–22 helpers per node, 60–120 worker iterations.
    Large,
}

impl SizeClass {
    /// Parses a CLI size name.
    pub fn parse(s: &str) -> Option<SizeClass> {
        match s {
            "small" => Some(SizeClass::Small),
            "medium" => Some(SizeClass::Medium),
            "large" => Some(SizeClass::Large),
            _ => None,
        }
    }

    /// `(node range, helper range, iteration range)` for this class.
    fn ranges(
        self,
    ) -> (
        std::ops::Range<u64>,
        std::ops::Range<u64>,
        std::ops::Range<u64>,
    ) {
        match self {
            SizeClass::Small => (2..4, 3..6, 6..13),
            SizeClass::Medium => (3..5, 6..11, 20..41),
            SizeClass::Large => (4..7, 14..23, 60..121),
        }
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        };
        f.write_str(s)
    }
}

/// One helper function: a `try_catch` around an external fault site.
struct HelperSpec {
    /// Exception type the site declares (and the catch arm matches).
    exc: ExceptionType,
    /// Simulated latency ticks of the external call.
    latency: u32,
    /// Runtime percentage chance of an extra per-call noise log.
    noise_pct: i64,
    /// Whether this helper tail-calls helper `j - 2` (layering).
    layered: bool,
    /// `Some(pct)` if the worker's call to this helper is rand-gated.
    gate_pct: Option<i64>,
}

/// One node of the generated system.
struct NodeBlueprint {
    /// Worker-loop iteration count (passed as the node's main argument).
    iters: i64,
    helpers: Vec<HelperSpec>,
    /// Decoy helper the flush task also calls, if any.
    task_helper: Option<usize>,
    /// Runtime percentage chance the worker forwards to the next node.
    send_pct: i64,
    /// Runtime percentage chance of listener / monitor noise logs.
    listener_noise_pct: i64,
    monitor_noise_pct: i64,
}

/// Every generation-time decision for one scenario, drawn up front.
struct Blueprint {
    nodes: Vec<NodeBlueprint>,
    /// Index of the critical node.
    critical: usize,
    /// Critical helper index on the critical node (fault B in multi mode).
    crit_helper: usize,
    /// `Some(helper)` in multi-fault mode: the WAL-poisoning fault A.
    poison_helper: Option<usize>,
    /// `Some(commit threshold)` if the single-fault trigger is phase-gated.
    phase_threshold: Option<i64>,
}

/// A synthesized scenario plus everything the planting pass needs: site
/// descriptions of the planted faults, the log needles the oracle matches
/// on, and size statistics.
pub struct GenProgram {
    /// The linted program.
    pub program: Program,
    /// One [`NodeSpec`] per generated node.
    pub topology: Topology,
    /// Simulation config (defaults; seed is set per run).
    pub config: SimConfig,
    /// Advisory lints from `finish_linted` (expected to be empty).
    pub warnings: Vec<LintWarning>,
    /// Name of the critical node, e.g. `"node2"`.
    pub critical_node: String,
    /// Site description of the critical fault (fault B in multi mode).
    pub critical_site_desc: String,
    /// Exception the critical site throws.
    pub critical_exc: ExceptionType,
    /// Site description of the poisoning fault A (multi-fault mode only).
    pub poison_site_desc: Option<String>,
    /// Exception the poisoning site throws (meaningless in single mode).
    pub poison_exc: ExceptionType,
    /// The FATAL log line the oracle requires.
    pub fatal_needle: String,
    /// The critical handler's Error-level log needle.
    pub error_needle: String,
    /// Fault A's handler Error-level log needle (multi-fault mode only).
    pub poison_needle: Option<String>,
}

impl GenProgram {
    /// Number of generated nodes.
    pub fn node_count(&self) -> usize {
        self.topology.nodes.len()
    }
}

/// Draws an integer uniformly from `lo..hi` (generation-time randomness).
fn draw(rng: &mut SmallRng, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo).max(1)
}

fn draw_range(rng: &mut SmallRng, r: std::ops::Range<u64>) -> u64 {
    draw(rng, r.start, r.end)
}

/// Percentage draw: true with probability `pct`/100.
fn chance(rng: &mut SmallRng, pct: u64) -> bool {
    rng.next_u64() % 100 < pct
}

fn draw_blueprint(rng: &mut SmallRng, size: SizeClass, multi_fault: bool) -> Blueprint {
    let (node_r, helper_r, iter_r) = size.ranges();
    let n_nodes = draw_range(rng, node_r) as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let n_helpers = draw_range(rng, helper_r.clone()) as usize;
        let helpers = (0..n_helpers)
            .map(|j| HelperSpec {
                exc: EXCEPTIONS[(i * 7 + j * 3 + rng.next_u64() as usize) % EXCEPTIONS.len()],
                latency: draw(rng, 1, 6) as u32,
                noise_pct: if chance(rng, 40) {
                    draw(rng, 5, 30) as i64
                } else {
                    0
                },
                layered: j >= 2 && chance(rng, 50),
                gate_pct: chance(rng, 40).then(|| draw(rng, 40, 90) as i64),
            })
            .collect::<Vec<_>>();
        nodes.push(NodeBlueprint {
            iters: draw_range(rng, iter_r.clone()) as i64,
            task_helper: chance(rng, 50).then(|| draw(rng, 0, n_helpers as u64) as usize),
            send_pct: draw(rng, 25, 60) as i64,
            listener_noise_pct: draw(rng, 5, 25) as i64,
            monitor_noise_pct: draw(rng, 3, 15) as i64,
            helpers,
        });
    }
    let critical = draw(rng, 0, n_nodes as u64) as usize;
    let n_crit_helpers = nodes[critical].helpers.len();
    let crit_helper = draw(rng, 0, n_crit_helpers as u64) as usize;
    // The critical fault must fire every iteration so occurrence counts
    // are stable: ungate it. Multi-fault A likewise.
    nodes[critical].helpers[crit_helper].gate_pct = None;
    let poison_helper = if multi_fault {
        let a =
            (crit_helper + 1 + draw(rng, 0, (n_crit_helpers - 1) as u64) as usize) % n_crit_helpers;
        nodes[critical].helpers[a].gate_pct = None;
        Some(a)
    } else {
        None
    };
    // Phase-gated triggers (~55% of single-fault cases) make the planted
    // occurrence land mid-run, so occurrence choice matters to the search.
    let phase_threshold =
        (!multi_fault && chance(rng, 55)).then(|| (nodes[critical].iters / 2).max(1));
    Blueprint {
        nodes,
        critical,
        crit_helper,
        poison_helper,
        phase_threshold,
    }
}

/// Per-node builder ids the function bodies reference.
struct NodeIds {
    ops: anduril_ir::GlobalId,
    errors: anduril_ir::GlobalId,
    commits: anduril_ir::GlobalId,
    msgs: anduril_ir::GlobalId,
    chan: ChanId,
    cond: CondId,
    pool: anduril_ir::ExecId,
    helpers: Vec<anduril_ir::FuncId>,
    task: anduril_ir::FuncId,
    listener: anduril_ir::FuncId,
    monitor: anduril_ir::FuncId,
    worker: anduril_ir::FuncId,
    main: anduril_ir::FuncId,
}

/// Emits the body of decoy helper `j` on node `i`: a guarded external
/// call whose failure is absorbed locally with a Warn log and an error
/// counter bump.
fn build_decoy_helper(
    b: &mut BodyBuilder<'_>,
    i: usize,
    j: usize,
    spec: &HelperSpec,
    ids: &NodeIds,
) {
    let step = b.param(0);
    let desc = format!("node{i}.op{j}");
    let exc = spec.exc;
    let latency = spec.latency;
    let noise = spec.noise_pct;
    let errors = ids.errors;
    b.try_catch(
        |b| {
            b.external_lat(&desc, &[exc], latency);
            if noise > 0 {
                b.if_(e::lt(e::rand(0, 100), e::int(noise)), |b| {
                    b.log(
                        Level::Info,
                        &format!("node{i}.op{j} processed batch {{}}"),
                        vec![e::var(step)],
                    );
                });
            }
        },
        exc,
        |b| {
            b.log_exc(
                Level::Warn,
                &format!("node{i}.op{j} failed; queuing retry"),
                vec![],
            );
            b.set_global(errors, e::add(e::glob(errors), e::int(1)));
        },
    );
    if spec.layered {
        let target = ids.helpers[j - 2];
        b.call(target, vec![e::var(step)]);
    }
}

/// Emits the single-fault critical helper: on injection the handler logs
/// the distinctive error needle and (past the optional phase gate) marks
/// the node degraded, which `main` later escalates to FATAL + abort.
fn build_critical_helper(
    b: &mut BodyBuilder<'_>,
    i: usize,
    j: usize,
    spec: &HelperSpec,
    degraded: anduril_ir::GlobalId,
    commits: anduril_ir::GlobalId,
    phase_threshold: Option<i64>,
) {
    let desc = format!("node{i}.op{j}");
    let exc = spec.exc;
    let latency = spec.latency;
    b.try_catch(
        |b| {
            b.external_lat(&desc, &[exc], latency);
        },
        exc,
        |b| {
            b.log_exc(
                Level::Error,
                "journal commit failed on {}",
                vec![e::self_node()],
            );
            match phase_threshold {
                Some(t) => {
                    b.if_else(
                        e::ge(e::glob(commits), e::int(t)),
                        |b| {
                            b.set_global(degraded, e::int(1));
                        },
                        |b| {
                            b.log(Level::Warn, "journal commit retried in warmup", vec![]);
                        },
                    );
                }
                None => {
                    b.set_global(degraded, e::int(1));
                }
            }
        },
    );
}

/// Emits multi-fault fault A: poisons the WAL flag when injected.
fn build_poison_helper(
    b: &mut BodyBuilder<'_>,
    i: usize,
    j: usize,
    spec: &HelperSpec,
    poisoned: anduril_ir::GlobalId,
) {
    let desc = format!("node{i}.op{j}");
    let exc = spec.exc;
    let latency = spec.latency;
    b.try_catch(
        |b| {
            b.external_lat(&desc, &[exc], latency);
        },
        exc,
        |b| {
            b.log_exc(
                Level::Error,
                "journal segment poisoned on {}",
                vec![e::self_node()],
            );
            b.set_global(poisoned, e::int(1));
        },
    );
}

/// Emits multi-fault fault B: a failover check that only dies if fault A
/// already poisoned the WAL — otherwise the failover succeeds with a
/// Warn log. A single injection can never satisfy the oracle.
fn build_failover_helper(
    b: &mut BodyBuilder<'_>,
    i: usize,
    j: usize,
    spec: &HelperSpec,
    poisoned: anduril_ir::GlobalId,
) {
    let desc = format!("node{i}.op{j}");
    let exc = spec.exc;
    let latency = spec.latency;
    b.try_catch(
        |b| {
            b.external_lat(&desc, &[exc], latency);
        },
        exc,
        |b| {
            b.log_exc(
                Level::Error,
                "failover read failed on {}",
                vec![e::self_node()],
            );
            b.if_else(
                e::gt(e::glob(poisoned), e::int(0)),
                |b| {
                    b.log(
                        Level::Error,
                        "FATAL: storage stack failed on {}",
                        vec![e::self_node()],
                    );
                    b.abort("storage stack failed");
                },
                |b| {
                    b.log(Level::Warn, "failover served from replica", vec![]);
                },
            );
        },
    );
}

/// Synthesizes one scenario from the blueprint drawn off `rng`.
///
/// Returns the program (already through `finish_linted`), its topology
/// and config, and the planted-fault metadata the caller needs to build
/// an oracle and derive a failure log.
pub fn synthesize(
    rng: &mut SmallRng,
    name: &str,
    size: SizeClass,
    multi_fault: bool,
) -> Result<GenProgram, anduril_ir::IrError> {
    let bp = draw_blueprint(rng, size, multi_fault);
    let n = bp.nodes.len();
    let mut pb = ProgramBuilder::new(name);

    // Critical-node state flags (single instance; only the critical node
    // writes them, but globals are per-node so other nodes just keep 0).
    let degraded = pb.global("replicaDegraded", Value::Int(0));
    let poisoned = pb.global("walPoisoned", Value::Int(0));

    // Declare all per-node state and functions first so bodies can
    // reference any node's channel (ring sends) and any helper (layering).
    let mut ids: Vec<NodeIds> = Vec::with_capacity(n);
    for (i, node) in bp.nodes.iter().enumerate() {
        let helpers = (0..node.helpers.len())
            .map(|j| pb.declare(&format!("node{i}_op{j}"), 1))
            .collect::<Vec<_>>();
        ids.push(NodeIds {
            ops: pb.global(&format!("node{i}_opsDone"), Value::Int(0)),
            errors: pb.global(&format!("node{i}_errors"), Value::Int(0)),
            commits: pb.global(&format!("node{i}_commits"), Value::Int(0)),
            msgs: pb.meta_global(&format!("node{i}_msgsSeen"), Value::Int(0)),
            chan: pb.chan(&format!("ingest{i}")),
            cond: pb.cond(&format!("tick{i}")),
            pool: pb.executor(&format!("pool{i}")),
            helpers,
            task: pb.declare(&format!("node{i}_flushTask"), 1),
            listener: pb.declare(&format!("node{i}_listener"), 1),
            monitor: pb.declare(&format!("node{i}_monitor"), 1),
            worker: pb.declare(&format!("node{i}_worker"), 1),
            main: pb.declare(&format!("node{i}_main"), 1),
        });
    }

    for (i, node) in bp.nodes.iter().enumerate() {
        let nid = &ids[i];
        let is_critical = i == bp.critical;

        // Helpers.
        for (j, spec) in node.helpers.iter().enumerate() {
            let commits = nid.commits;
            pb.body(nid.helpers[j], |b| {
                if is_critical && j == bp.crit_helper {
                    if multi_fault {
                        build_failover_helper(b, i, j, spec, poisoned);
                    } else {
                        build_critical_helper(b, i, j, spec, degraded, commits, bp.phase_threshold);
                    }
                } else if is_critical && Some(j) == bp.poison_helper {
                    build_poison_helper(b, i, j, spec, poisoned);
                } else {
                    build_decoy_helper(b, i, j, spec, &ids[i]);
                }
            });
        }

        // Flush task: runs on the node's executor, bumps the commit
        // counter, optionally calls a decoy helper and logs noise.
        let commits = nid.commits;
        let task_helper = node.task_helper.map(|k| nid.helpers[k]);
        pb.body(nid.task, |b| {
            let step = b.param(0);
            b.set_global(commits, e::add(e::glob(commits), e::int(1)));
            if let Some(h) = task_helper {
                b.call(h, vec![e::var(step)]);
            }
            b.if_(e::lt(e::rand(0, 100), e::int(10)), |b| {
                b.log(
                    Level::Debug,
                    &format!("node{i} flushed segment {{}}"),
                    vec![e::var(step)],
                );
            });
        });

        // Listener: drains the ingest channel. Recv timeouts THROW, so
        // the whole receive is wrapped in a Timeout catch.
        let (chan, msgs, noise) = (nid.chan, nid.msgs, node.listener_noise_pct);
        pb.body(nid.listener, |b| {
            let iters = b.param(0);
            let k = b.local();
            let v = b.local();
            b.assign(k, e::int(0));
            b.while_(e::lt(e::var(k), e::var(iters)), |b| {
                b.try_catch(
                    |b| {
                        b.recv(chan, v, Some(e::int(40)));
                        b.set_global(msgs, e::add(e::glob(msgs), e::int(1)));
                    },
                    ExceptionType::Timeout,
                    |b| {
                        b.if_(e::lt(e::rand(0, 100), e::int(noise)), |b| {
                            b.log(Level::Debug, &format!("node{i} ingest poll idle"), vec![]);
                        });
                    },
                );
                b.assign(k, e::add(e::var(k), e::int(1)));
            });
        });

        // Monitor: waits on the tick condition. Wait-cond timeouts do
        // not throw; they just report not-ok, which we ignore.
        let (cond, mnoise) = (nid.cond, node.monitor_noise_pct);
        pb.body(nid.monitor, |b| {
            let iters = b.param(0);
            let k = b.local();
            b.assign(k, e::int(0));
            b.while_(e::lt(e::var(k), e::var(iters)), |b| {
                b.wait_cond(cond, Some(e::int(30)), None);
                b.if_(e::lt(e::rand(0, 100), e::int(mnoise)), |b| {
                    b.log(
                        Level::Warn,
                        &format!("node{i} tick monitor saw slow cycle"),
                        vec![],
                    );
                });
                b.assign(k, e::add(e::var(k), e::int(1)));
            });
        });

        // Worker: the main request loop.
        let next_chan = ids[(i + 1) % n].chan;
        let next_node = format!("node{}", (i + 1) % n);
        let (pool, task, cond, ops, send_pct) =
            (nid.pool, nid.task, nid.cond, nid.ops, node.send_pct);
        let helper_plan: Vec<(anduril_ir::FuncId, Option<i64>)> = node
            .helpers
            .iter()
            .enumerate()
            .map(|(j, h)| (nid.helpers[j], h.gate_pct))
            .collect();
        pb.body(nid.worker, |b| {
            let iters = b.param(0);
            let step = b.local();
            let fut = b.local();
            b.assign(step, e::int(0));
            b.while_(e::lt(e::var(step), e::var(iters)), |b| {
                b.sleep(e::rand(2, 9));
                for &(func, gate) in &helper_plan {
                    match gate {
                        Some(pct) => {
                            b.if_(e::lt(e::rand(0, 100), e::int(pct)), |b| {
                                b.call(func, vec![e::var(step)]);
                            });
                        }
                        None => {
                            b.call(func, vec![e::var(step)]);
                        }
                    }
                }
                b.submit(pool, task, vec![e::var(step)], fut);
                // Await can throw Execution (task died) or Timeout.
                b.try_catch(
                    |b| {
                        b.await_(fut, Some(e::int(80)), None);
                    },
                    ExceptionPattern::OneOf(vec![ExceptionType::Timeout, ExceptionType::Execution]),
                    |b| {
                        b.log(Level::Warn, &format!("node{i} flush task lagged"), vec![]);
                    },
                );
                b.if_(e::lt(e::rand(0, 100), e::int(send_pct)), |b| {
                    b.send(
                        e::str_(&next_node),
                        next_chan,
                        e::list(vec![e::self_node(), e::var(step)]),
                    );
                });
                b.signal(cond);
                b.set_global(ops, e::add(e::glob(ops), e::int(1)));
                b.assign(step, e::add(e::var(step), e::int(1)));
            });
        });

        // Main: spawn listener + monitor, drive the worker, summarize.
        let (listener, monitor, worker) = (nid.listener, nid.monitor, nid.worker);
        let (ops, errors, commits, msgs) = (nid.ops, nid.errors, nid.commits, nid.msgs);
        pb.body(nid.main, |b| {
            let iters = b.param(0);
            b.log(
                Level::Info,
                "node {} starting with {} rounds",
                vec![e::self_node(), e::var(iters)],
            );
            b.spawn("listener", listener, vec![e::var(iters)]);
            b.spawn("monitor", monitor, vec![e::var(iters)]);
            b.call(worker, vec![e::var(iters)]);
            b.log(
                Level::Info,
                "node {} done: {} ops, {} errors, {} commits, {} peer msgs",
                vec![
                    e::self_node(),
                    e::glob(ops),
                    e::glob(errors),
                    e::glob(commits),
                    e::glob(msgs),
                ],
            );
            if is_critical && !multi_fault {
                b.if_(e::gt(e::glob(degraded), e::int(0)), |b| {
                    b.log(
                        Level::Error,
                        "FATAL: replication halted on {}",
                        vec![e::self_node()],
                    );
                    b.abort("replication halted");
                });
            }
        });
    }

    let node_specs = bp
        .nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            NodeSpec::new(
                &format!("node{i}"),
                ids[i].main,
                vec![Value::Int(node.iters)],
            )
        })
        .collect::<Vec<_>>();

    let (program, warnings) = pb.finish_linted()?;
    let critical_node = format!("node{}", bp.critical);
    let crit_exc = bp.nodes[bp.critical].helpers[bp.crit_helper].exc;
    let poison_exc = bp
        .poison_helper
        .map(|a| bp.nodes[bp.critical].helpers[a].exc)
        .unwrap_or(ExceptionType::Io);
    let fatal_needle = if multi_fault {
        format!("FATAL: storage stack failed on {critical_node}")
    } else {
        format!("FATAL: replication halted on {critical_node}")
    };
    let error_needle = if multi_fault {
        "failover read failed on".to_string()
    } else {
        "journal commit failed on".to_string()
    };
    Ok(GenProgram {
        program,
        topology: Topology::new(node_specs),
        config: SimConfig::default(),
        warnings,
        critical_site_desc: format!("node{}.op{}", bp.critical, bp.crit_helper),
        critical_exc: crit_exc,
        poison_site_desc: bp
            .poison_helper
            .map(|a| format!("node{}.op{}", bp.critical, a)),
        poison_exc,
        critical_node,
        fatal_needle,
        error_needle,
        poison_needle: multi_fault.then(|| "journal segment poisoned on".to_string()),
    })
}
