//! 500-seed smoke fuzz over the scenario generator.
//!
//! For every seed the generated program must (1) pass `finish_linted`
//! with no errors and no advisory warnings, (2) simulate to completion
//! under both the register VM and the tree-walk oracle with
//! byte-identical results — fault-free AND under the planted plan — and
//! (3) keep its planted ground truth feasible under the search context's
//! reachability pruning and abstract occurrence bounds.
//!
//! Named with a `smoke_fuzz_` prefix so CI can verify the suite was not
//! silently filtered out.

use anduril_gen::{generate_one, verify_sound, GenConfig, SizeClass};
use anduril_sim::{run, Engine, InjectionPlan, RunResult, SimConfig};

const SEEDS: usize = 500;
/// Every 5th case plants a two-fault cascade.
const MULTI_EVERY: usize = 5;

/// Asserts every deterministic field of two run results is identical.
/// (`wall` and `decision_ns` are host-time metrics and excluded.)
fn assert_identical(tag: &str, vm: &RunResult, ast: &RunResult) {
    assert_eq!(vm.log, ast.log, "{tag}: log streams differ");
    assert_eq!(vm.trace, ast.trace, "{tag}: fault-site traces differ");
    assert_eq!(vm.injected, ast.injected, "{tag}: injected records differ");
    assert_eq!(
        vm.injected_all, ast.injected_all,
        "{tag}: injection histories differ"
    );
    assert_eq!(vm.crashed, ast.crashed, "{tag}: crash flags differ");
    assert_eq!(
        vm.site_occurrences, ast.site_occurrences,
        "{tag}: occurrence counters differ"
    );
    assert_eq!(vm.threads, ast.threads, "{tag}: thread snapshots differ");
    assert_eq!(vm.nodes, ast.nodes, "{tag}: node snapshots differ");
    assert_eq!(vm.end_time, ast.end_time, "{tag}: end times differ");
    assert_eq!(vm.steps, ast.steps, "{tag}: step counts differ");
    assert_eq!(
        vm.injection_requests, ast.injection_requests,
        "{tag}: injection request counts differ"
    );
}

fn run_both(tag: &str, gc: &anduril_gen::GeneratedCase, plan: InjectionPlan) {
    let scenario = &gc.case.scenario;
    let vm_cfg = SimConfig {
        engine: Engine::Vm,
        ..scenario.config.with_seed(gc.case.failure_seed)
    };
    let ast_cfg = SimConfig {
        engine: Engine::TreeWalk,
        ..vm_cfg.clone()
    };
    let vm = run(&scenario.program, &scenario.topology, &vm_cfg, plan.clone())
        .unwrap_or_else(|e| panic!("{tag}: vm run failed: {e:?}"));
    let ast = run(&scenario.program, &scenario.topology, &ast_cfg, plan)
        .unwrap_or_else(|e| panic!("{tag}: tree-walk run failed: {e:?}"));
    assert_identical(tag, &vm, &ast);
}

#[test]
fn smoke_fuzz_500_seeds_lint_clean_engine_identical_and_sound() {
    let mut multi_cases = 0usize;
    let mut nonzero_occurrence_plants = 0usize;
    for i in 0..SEEDS {
        let cfg = GenConfig {
            seed: 0xF00D,
            size: SizeClass::Small,
            multi_fault: i % MULTI_EVERY == MULTI_EVERY - 1,
        };
        let gc =
            generate_one(&cfg, i).unwrap_or_else(|e| panic!("case {i}: generation failed: {e}"));

        // (1) Lint-clean: `generate_one` already rejects IR errors; the
        // grammar's pairing discipline must also leave zero advisories.
        assert_eq!(gc.warnings, 0, "case {i}: advisory lint warnings");

        // (2) Engine-differential, fault-free and planted.
        run_both(&format!("case {i} fault-free"), &gc, InjectionPlan::none());
        run_both(&format!("case {i} planted"), &gc, gc.plan());

        // (3) Ground truth survives pruning and replays to the oracle.
        verify_sound(&gc).unwrap_or_else(|e| panic!("case {i}: unsound: {e}"));

        multi_cases += usize::from(gc.is_multi_fault());
        nonzero_occurrence_plants += usize::from(gc.plant.iter().any(|f| f.occurrence > 0));
    }
    assert_eq!(multi_cases, SEEDS / MULTI_EVERY, "multi-fault mix drifted");
    // The phase gate must actually matter on a healthy fraction of
    // cases: if every plant landed on occurrence 0 the occurrence search
    // dimension would be untested.
    assert!(
        nonzero_occurrence_plants > SEEDS / 10,
        "only {nonzero_occurrence_plants}/{SEEDS} plants at occurrence > 0"
    );
}
