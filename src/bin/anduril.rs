//! The `anduril` command-line tool: inspect and reproduce the bundled
//! failure cases.
//!
//! ```console
//! $ anduril list
//! $ anduril show f17
//! $ anduril log f17 | head
//! $ anduril reproduce f17 [--strategy full|exhaustive|site-distance|...]
//! ```

use anduril::baselines::{CrashTuner, Fate, StacktraceInjector};
use anduril::failures::{all_cases, case_by_id};
use anduril::{
    explore, explore_batched, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, SearchContext, Strategy,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  anduril list\n  anduril show <case>\n  anduril log <case>\n  \
         anduril reproduce <case> [--strategy NAME] [--max-rounds N] [--emit-script FILE]\n  \
         {:21}[--threads N] [--batch N]\n  \
         anduril replay <case> <script-file>\n  \
         anduril explain <case>\n\n\
         strategies: full (default), exhaustive, site-distance, site-distance-limit3,\n\
         site-feedback, multiply, sum-aggregate, order-distance, global-diff,\n\
         fate, crashtuner, crashtuner-meta-exc, stacktrace\n\n\
         --threads > 1 explores in speculative parallel batches (identical\n\
         results, less wall time); feedback-strategy variants only",
        ""
    );
    std::process::exit(2);
}

fn feedback_config_by_name(name: &str) -> Option<FeedbackConfig> {
    Some(match name {
        "full" => FeedbackConfig::full(),
        "exhaustive" => FeedbackConfig::exhaustive(),
        "site-distance" => FeedbackConfig::site_distance(),
        "site-distance-limit3" => FeedbackConfig::site_distance_limited(),
        "site-feedback" => FeedbackConfig::site_feedback(),
        "multiply" => FeedbackConfig::multiply(),
        "sum-aggregate" => FeedbackConfig::sum_aggregate(),
        "order-distance" => FeedbackConfig::order_distance(),
        "global-diff" => FeedbackConfig::global_diff(),
        _ => return None,
    })
}

fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    if let Some(cfg) = feedback_config_by_name(name) {
        return Some(Box::new(FeedbackStrategy::new(cfg)));
    }
    Some(match name {
        "fate" => Box::new(Fate::new()),
        "crashtuner" => Box::new(CrashTuner::crashes()),
        "crashtuner-meta-exc" => Box::new(CrashTuner::meta_exceptions()),
        "stacktrace" => Box::new(StacktraceInjector::new()),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:4} {:10} {:10} description", "id", "ticket", "system");
            for c in all_cases() {
                println!(
                    "{:4} {:10} {:10} {}",
                    c.id, c.ticket, c.system, c.description
                );
            }
        }
        Some("show") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            println!("{} ({}) on {}", case.ticket, case.id, case.system);
            println!("  {}", case.description);
            println!("  root cause : {} ({})", case.root_site_desc, case.root_exc);
            match case.ground_truth() {
                Ok(gt) => println!(
                    "  ground truth: occurrence {} under seed {}",
                    gt.occurrence, gt.seed
                ),
                Err(e) => println!("  ground truth: UNRESOLVABLE ({e})"),
            }
            for d in &case.deeper_causes {
                println!("  deeper cause: {} ({}) — {}", d.site_desc, d.exc, d.note);
            }
        }
        Some("log") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            print!("{}", case.failure_log().expect("failure log"));
        }
        Some("reproduce") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let mut strategy_name = "full".to_string();
            let mut max_rounds = 2_000usize;
            let mut emit_script: Option<String> = None;
            let mut threads = 1usize;
            let mut batch_size: Option<usize> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--strategy" => {
                        strategy_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--max-rounds" => {
                        max_rounds = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--emit-script" => {
                        emit_script = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--threads" => {
                        threads = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--batch" => {
                        batch_size = Some(
                            args.get(i + 1)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            let gt = case.ground_truth().expect("ground truth");
            let failure_log = case.failure_log().expect("failure log");
            let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
                .expect("context");
            eprintln!(
                "{}: {} observables, {} candidate units, causal graph {}v/{}e",
                case.id,
                ctx.observables.len(),
                ctx.units.len(),
                ctx.graph.node_count(),
                ctx.graph.edge_count()
            );
            let cfg = ExplorerConfig {
                max_rounds,
                ..ExplorerConfig::default()
            };
            let batched = threads > 1 || batch_size.is_some();
            let r = if batched {
                // The batched path speculates on a cloned strategy, so it
                // is limited to the (Clone) feedback-strategy family.
                let Some(fb_cfg) = feedback_config_by_name(&strategy_name) else {
                    eprintln!("--threads/--batch require a feedback-strategy variant");
                    std::process::exit(2);
                };
                let batch = BatchExplorerConfig {
                    batch_size: batch_size.unwrap_or_else(|| threads.max(2) * 2),
                    threads,
                };
                let mut strategy = FeedbackStrategy::new(fb_cfg);
                explore_batched(
                    &ctx,
                    &case.oracle,
                    &mut strategy,
                    &cfg,
                    &batch,
                    Some(gt.site),
                )
                .expect("explore")
            } else {
                let mut strategy = strategy_by_name(&strategy_name).unwrap_or_else(|| usage());
                explore(&ctx, &case.oracle, strategy.as_mut(), &cfg, Some(gt.site))
                    .expect("explore")
            };
            if r.success {
                println!(
                    "reproduced in {} rounds ({} sim ticks, {:?} wall) with {}",
                    r.rounds, r.sim_time_total, r.wall, r.strategy
                );
                if let Some(s) = r.script {
                    println!(
                        "script: seed {} inject {} at `{}` occurrence {} (replay verified: {})",
                        s.seed, s.exc, s.desc, s.occurrence, r.replay_verified
                    );
                    if let Some(path) = emit_script {
                        std::fs::write(&path, s.to_text()).expect("write script");
                        println!("script written to {path}");
                    }
                }
            } else {
                println!(
                    "NOT reproduced within {} rounds with {}",
                    r.rounds, r.strategy
                );
                std::process::exit(1);
            }
        }
        Some("explain") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let failure_log = case.failure_log().expect("failure log");
            let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
                .expect("context");
            let mut s = FeedbackStrategy::new(FeedbackConfig::full());
            s.init(&ctx);
            let _ = s.plan_round(&ctx, 0);
            println!(
                "{}: initial priority breakdown (F_i = L + I via argmin observable k*)",
                case.id
            );
            println!(
                "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                "site", "F_i", "k*", "L", "I_k", "best occ", "T"
            );
            let mut explanations: Vec<_> = ctx
                .units
                .iter()
                .filter_map(|&u| s.explain(&ctx, u))
                .collect();
            explanations.sort_by(|a, b| a.f_i.partial_cmp(&b.f_i).unwrap());
            for ex in explanations {
                let (occ, t) = ex
                    .best_instance
                    .map(|(o, t)| (format!("{o:?}"), format!("{t:.1}")))
                    .unwrap_or(("-".into(), "-".into()));
                println!(
                    "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                    ctx.scenario.program.sites[ex.unit.site.index()].desc,
                    ex.f_i,
                    ex.k_star,
                    ex.l,
                    ex.i_k,
                    occ,
                    t
                );
            }
        }
        Some("replay") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let path = args.get(2).unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path).expect("read script file");
            let script = anduril::ReproScript::parse(&text).expect("well-formed script");
            let r = script.replay(&case.scenario).expect("replay runs");
            println!(
                "replayed {}: oracle satisfied = {}",
                case.id,
                case.oracle.check(&r)
            );
        }
        _ => usage(),
    }
}
