//! The `anduril` command-line tool: inspect and reproduce the bundled
//! failure cases.
//!
//! ```console
//! $ anduril list
//! $ anduril show f17
//! $ anduril log f17 | head
//! $ anduril reproduce f17 [--strategy full|exhaustive|site-distance|...]
//! ```

use anduril::baselines::{CrashTuner, Fate, StacktraceInjector};
use anduril::failures::{all_cases, case_by_id};
use anduril::{
    explore, explore_batched, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, SearchContext, Strategy,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  anduril list\n  anduril show <case>\n  anduril log <case>\n  \
         anduril analyze [<case>|<system>|all] [--json FILE]\n  \
         anduril reproduce <case> [--strategy NAME] [--max-rounds N] [--emit-script FILE]\n  \
         {:21}[--threads N] [--batch N]\n  \
         anduril replay <case> <script-file>\n  \
         anduril explain <case>\n\n\
         strategies: full (default), exhaustive, site-distance, site-distance-limit3,\n\
         site-feedback, multiply, sum-aggregate, order-distance, global-diff,\n\
         fate, crashtuner, crashtuner-meta-exc, stacktrace\n\n\
         --threads > 1 explores in speculative parallel batches (identical\n\
         results, less wall time); feedback-strategy variants only\n\n\
         analyze prints the static-analysis report (site reduction, graph\n\
         size, phase timings, per-observable distances) and writes the same\n\
         data as JSON (default results/analyze.json; `--json -` for stdout)",
        ""
    );
    std::process::exit(2);
}

/// Per-case static-analysis report data for `anduril analyze`.
struct AnalyzeRow {
    id: &'static str,
    ticket: &'static str,
    system: &'static str,
    sites_total: usize,
    sites_reachable: usize,
    sites_inferred: usize,
    units: usize,
    nodes: usize,
    edges: usize,
    /// `(template text, min distance over inferred sites)` per observable.
    observables: Vec<(String, Option<u32>)>,
    timings: anduril::causal::BuildTimings,
    lints: Vec<String>,
}

fn analyze_case(case: &anduril::failures::FailureCase) -> AnalyzeRow {
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let program = &ctx.scenario.program;
    let observables = ctx
        .observables
        .iter()
        .enumerate()
        .map(|(k, o)| {
            let text = program.templates[o.template.index()].text.clone();
            let min = ctx.distances[k].values().min().copied();
            (text, min)
        })
        .collect();
    AnalyzeRow {
        id: case.id,
        ticket: case.ticket,
        system: case.system,
        sites_total: program.sites.len(),
        sites_reachable: ctx.candidate_sites.len(),
        sites_inferred: ctx.graph.sources().len(),
        units: ctx.units.len(),
        nodes: ctx.graph.node_count(),
        edges: ctx.graph.edge_count(),
        observables,
        timings: ctx.timings,
        lints: program.lints().iter().map(|w| w.to_string()).collect(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn analyze_json(rows: &[AnalyzeRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"ticket\": \"{}\", \"system\": \"{}\", \
             \"sites_total\": {}, \"sites_reachable\": {}, \"sites_inferred\": {}, \
             \"units\": {}, \"nodes\": {}, \"edges\": {}, \
             \"timings_ns\": {{\"exception\": {}, \"slicing\": {}, \"chaining\": {}, \"total\": {}}}, \
             \"observables\": [",
            json_escape(r.id),
            json_escape(r.ticket),
            json_escape(r.system),
            r.sites_total,
            r.sites_reachable,
            r.sites_inferred,
            r.units,
            r.nodes,
            r.edges,
            r.timings.exception_ns,
            r.timings.slicing_ns,
            r.timings.chaining_ns,
            r.timings.total_ns,
        );
        for (j, (text, min)) in r.observables.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"template\": \"{}\", \"min_distance\": {}}}",
                if j > 0 { ", " } else { "" },
                json_escape(text),
                min.map(|d| d.to_string()).unwrap_or_else(|| "null".into()),
            );
        }
        out.push_str("], \"lints\": [");
        for (j, l) in r.lints.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\"",
                if j > 0 { ", " } else { "" },
                json_escape(l)
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn feedback_config_by_name(name: &str) -> Option<FeedbackConfig> {
    Some(match name {
        "full" => FeedbackConfig::full(),
        "exhaustive" => FeedbackConfig::exhaustive(),
        "site-distance" => FeedbackConfig::site_distance(),
        "site-distance-limit3" => FeedbackConfig::site_distance_limited(),
        "site-feedback" => FeedbackConfig::site_feedback(),
        "multiply" => FeedbackConfig::multiply(),
        "sum-aggregate" => FeedbackConfig::sum_aggregate(),
        "order-distance" => FeedbackConfig::order_distance(),
        "global-diff" => FeedbackConfig::global_diff(),
        _ => return None,
    })
}

fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    if let Some(cfg) = feedback_config_by_name(name) {
        return Some(Box::new(FeedbackStrategy::new(cfg)));
    }
    Some(match name {
        "fate" => Box::new(Fate::new()),
        "crashtuner" => Box::new(CrashTuner::crashes()),
        "crashtuner-meta-exc" => Box::new(CrashTuner::meta_exceptions()),
        "stacktrace" => Box::new(StacktraceInjector::new()),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:4} {:10} {:10} description", "id", "ticket", "system");
            for c in all_cases() {
                println!(
                    "{:4} {:10} {:10} {}",
                    c.id, c.ticket, c.system, c.description
                );
            }
        }
        Some("show") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            println!("{} ({}) on {}", case.ticket, case.id, case.system);
            println!("  {}", case.description);
            println!("  root cause : {} ({})", case.root_site_desc, case.root_exc);
            match case.ground_truth() {
                Ok(gt) => println!(
                    "  ground truth: occurrence {} under seed {}",
                    gt.occurrence, gt.seed
                ),
                Err(e) => println!("  ground truth: UNRESOLVABLE ({e})"),
            }
            for d in &case.deeper_causes {
                println!("  deeper cause: {} ({}) — {}", d.site_desc, d.exc, d.note);
            }
        }
        Some("log") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            print!("{}", case.failure_log().expect("failure log"));
        }
        Some("analyze") => {
            let mut selector = "all".to_string();
            let mut json_path: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--json" => {
                        json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    s if i == 1 => {
                        selector = s.to_string();
                        i += 1;
                    }
                    _ => usage(),
                }
            }
            let cases: Vec<_> = all_cases()
                .into_iter()
                .filter(|c| {
                    selector.eq_ignore_ascii_case("all")
                        || c.id.eq_ignore_ascii_case(&selector)
                        || c.system.eq_ignore_ascii_case(&selector)
                })
                .collect();
            if cases.is_empty() {
                eprintln!("no case or system matches `{selector}`");
                std::process::exit(2);
            }
            let rows: Vec<AnalyzeRow> = cases.iter().map(analyze_case).collect();

            // With `--json -` the machine-readable document owns stdout, so
            // the human-readable report moves to stderr and stays pipeable.
            let json_stdout = json_path.as_deref() == Some("-");
            let mut report = String::new();
            use std::fmt::Write as _;

            writeln!(
                report,
                "Static analysis report (fault-site reduction and causal-graph shape)\n"
            )
            .unwrap();
            let mut t = anduril_bench::TextTable::new(&[
                "Case", "Ticket", "System", "Sites", "Reach", "Inferred", "Units", "Nodes",
                "Edges", "Obs", "MinDist", "Exc us", "Slice us", "Chain us", "Total us",
            ]);
            let mut last_system = "";
            for r in &rows {
                let mindist = r
                    .observables
                    .iter()
                    .map(|(_, m)| m.map(|d| d.to_string()).unwrap_or_else(|| "-".into()))
                    .collect::<Vec<_>>()
                    .join("/");
                t.row(vec![
                    r.id.to_string(),
                    r.ticket.to_string(),
                    if r.system == last_system {
                        String::new()
                    } else {
                        r.system.to_string()
                    },
                    r.sites_total.to_string(),
                    r.sites_reachable.to_string(),
                    r.sites_inferred.to_string(),
                    r.units.to_string(),
                    r.nodes.to_string(),
                    r.edges.to_string(),
                    r.observables.len().to_string(),
                    mindist,
                    (r.timings.exception_ns / 1_000).to_string(),
                    (r.timings.slicing_ns / 1_000).to_string(),
                    (r.timings.chaining_ns / 1_000).to_string(),
                    (r.timings.total_ns / 1_000).to_string(),
                ]);
                last_system = r.system;
            }
            write!(report, "{}", t.render()).unwrap();
            writeln!(
                report,
                "\nSites = static fault sites; Reach = reachable from the workload \
                 roots; Inferred = causal-graph sources; Units = (site, exception) \
                 candidates after pruning; MinDist = per-observable minimum source \
                 distance."
            )
            .unwrap();
            for r in &rows {
                for l in &r.lints {
                    writeln!(report, "lint [{}]: {}", r.id, l).unwrap();
                }
            }
            if json_stdout {
                eprint!("{report}");
            } else {
                print!("{report}");
            }

            let json = analyze_json(&rows);
            match json_path.as_deref() {
                Some("-") => print!("{json}"),
                Some(path) => {
                    std::fs::write(path, &json).expect("write json");
                    println!("\nJSON written to {path}");
                }
                None => {
                    std::fs::create_dir_all("results").expect("create results dir");
                    std::fs::write("results/analyze.json", &json).expect("write json");
                    println!("\nJSON written to results/analyze.json");
                }
            }
        }
        Some("reproduce") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let mut strategy_name = "full".to_string();
            let mut max_rounds = 2_000usize;
            let mut emit_script: Option<String> = None;
            let mut threads = 1usize;
            let mut batch_size: Option<usize> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--strategy" => {
                        strategy_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--max-rounds" => {
                        max_rounds = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--emit-script" => {
                        emit_script = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--threads" => {
                        threads = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--batch" => {
                        batch_size = Some(
                            args.get(i + 1)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            let gt = case.ground_truth().expect("ground truth");
            let failure_log = case.failure_log().expect("failure log");
            let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
                .expect("context");
            eprintln!(
                "{}: {} observables, {} candidate units, causal graph {}v/{}e",
                case.id,
                ctx.observables.len(),
                ctx.units.len(),
                ctx.graph.node_count(),
                ctx.graph.edge_count()
            );
            let cfg = ExplorerConfig {
                max_rounds,
                ..ExplorerConfig::default()
            };
            let batched = threads > 1 || batch_size.is_some();
            let r = if batched {
                // The batched path speculates on a cloned strategy, so it
                // is limited to the (Clone) feedback-strategy family.
                let Some(fb_cfg) = feedback_config_by_name(&strategy_name) else {
                    eprintln!("--threads/--batch require a feedback-strategy variant");
                    std::process::exit(2);
                };
                let batch = BatchExplorerConfig {
                    batch_size: batch_size.unwrap_or_else(|| threads.max(2) * 2),
                    threads,
                };
                let mut strategy = FeedbackStrategy::new(fb_cfg);
                explore_batched(
                    &ctx,
                    &case.oracle,
                    &mut strategy,
                    &cfg,
                    &batch,
                    Some(gt.site),
                )
                .expect("explore")
            } else {
                let mut strategy = strategy_by_name(&strategy_name).unwrap_or_else(|| usage());
                explore(&ctx, &case.oracle, strategy.as_mut(), &cfg, Some(gt.site))
                    .expect("explore")
            };
            if r.success {
                println!(
                    "reproduced in {} rounds ({} sim ticks, {:?} wall) with {}",
                    r.rounds, r.sim_time_total, r.wall, r.strategy
                );
                if let Some(s) = r.script {
                    println!(
                        "script: seed {} inject {} at `{}` occurrence {} (replay verified: {})",
                        s.seed, s.exc, s.desc, s.occurrence, r.replay_verified
                    );
                    if let Some(path) = emit_script {
                        std::fs::write(&path, s.to_text()).expect("write script");
                        println!("script written to {path}");
                    }
                }
            } else {
                println!(
                    "NOT reproduced within {} rounds with {}",
                    r.rounds, r.strategy
                );
                std::process::exit(1);
            }
        }
        Some("explain") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let failure_log = case.failure_log().expect("failure log");
            let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
                .expect("context");
            let mut s = FeedbackStrategy::new(FeedbackConfig::full());
            s.init(&ctx);
            let _ = s.plan_round(&ctx, 0);
            println!(
                "{}: initial priority breakdown (F_i = L + I via argmin observable k*)",
                case.id
            );
            println!(
                "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                "site", "F_i", "k*", "L", "I_k", "best occ", "T"
            );
            let mut explanations: Vec<_> = ctx
                .units
                .iter()
                .filter_map(|&u| s.explain(&ctx, u))
                .collect();
            explanations.sort_by(|a, b| a.f_i.partial_cmp(&b.f_i).unwrap());
            for ex in explanations {
                let (occ, t) = ex
                    .best_instance
                    .map(|(o, t)| (format!("{o:?}"), format!("{t:.1}")))
                    .unwrap_or(("-".into(), "-".into()));
                println!(
                    "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                    ctx.scenario.program.sites[ex.unit.site.index()].desc,
                    ex.f_i,
                    ex.k_star,
                    ex.l,
                    ex.i_k,
                    occ,
                    t
                );
            }
        }
        Some("replay") => {
            let case = args
                .get(1)
                .and_then(|id| case_by_id(id))
                .unwrap_or_else(|| usage());
            let path = args.get(2).unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path).expect("read script file");
            let script = anduril::ReproScript::parse(&text).expect("well-formed script");
            let r = script.replay(&case.scenario).expect("replay runs");
            println!(
                "replayed {}: oracle satisfied = {}",
                case.id,
                case.oracle.check(&r)
            );
        }
        _ => usage(),
    }
}
