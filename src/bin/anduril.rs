//! The `anduril` command-line tool: inspect and reproduce the bundled
//! failure cases.
//!
//! ```console
//! $ anduril list
//! $ anduril show f17
//! $ anduril log f17 | head
//! $ anduril reproduce f17 [--strategy full|exhaustive|site-distance|...]
//! ```

use anduril::baselines::{CrashTuner, Fate, StacktraceInjector};
use anduril::failures::{all_cases, case_by_id, FailureCase};
use anduril::trace::{FileTracer, Json, NoopTracer, Tracer};
use anduril::{
    explore_batched_traced, explore_traced, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, SearchContext, Strategy,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  anduril list\n  anduril show <case>\n  anduril log <case>\n  \
         anduril analyze [<case>|<system>|all] [--json FILE]\n  \
         anduril reproduce <case> [--strategy NAME] [--max-rounds N] [--emit-script FILE]\n  \
         {0:21}[--threads N] [--batch N] [--trace FILE] [--engine vm|ast]\n  \
         {0:21}[--snapshots N] [--adaptive on|off]\n  \
         anduril trace <file> [--summary | --round N | --promotions | --json]\n  \
         anduril replay <case> <script-file>\n  \
         anduril explain <case>\n  \
         anduril generate [--seed S] [--count N] [--size small|medium|large]\n  \
         {0:21}[--multi-fault] [--reproduce]\n\n\
         strategies: full (default), exhaustive, site-distance, site-distance-limit3,\n\
         site-feedback, multiply, sum-aggregate, order-distance, global-diff,\n\
         fate, crashtuner, crashtuner-meta-exc, stacktrace\n\n\
         --threads > 1 explores in speculative parallel batches (identical\n\
         results, less wall time); feedback-strategy variants only\n\n\
         --trace FILE records the structured search-trace stream (context\n\
         phases, per-round decisions with priority provenance, feedback,\n\
         speculation) as JSONL; `anduril trace FILE` renders it\n\n\
         --engine selects the simulator executor: vm (default, bytecode\n\
         register VM) or ast (tree-walking oracle); both are byte-identical\n\n\
         --snapshots N caps the snapshot-prefix cache at N seeds (default\n\
         16; 0 disables). Batched rounds capture world-state snapshots so\n\
         same-seed reruns (speculation misses, replay verification) resume\n\
         mid-timeline; results are byte-identical either way\n\n\
         --adaptive on promotes synthetic observables from causal-graph\n\
         interior nodes when the search stalls (a retry pass begins),\n\
         re-shaping priorities around the top-ranked sites; off (default)\n\
         keeps the paper's frozen observable set. Feedback-strategy\n\
         variants only; sequential and --threads runs stay byte-identical\n\n\
         trace --promotions lists each promoted observable with its\n\
         provenance (source graph node, trigger pass, distance delta)\n\n\
         analyze prints the static-analysis report (site reduction, graph\n\
         size, phase timings, per-observable distances) and writes the same\n\
         data as JSON (default results/analyze.json; `--json -` for stdout)\n\n\
         generate synthesizes random well-formed scenarios with a planted\n\
         root-cause fault (ground truth correct by construction), verifies\n\
         each is sound, and with --reproduce runs the feedback explorer on\n\
         single-fault cases; --multi-fault plants a two-fault cascade",
        ""
    );
    std::process::exit(2);
}

/// Prints an error to stderr and exits nonzero. Every runtime failure path
/// (missing case, unreadable file, simulator error) funnels through here so
/// no subcommand can fail with exit 0.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("anduril: {msg}");
    std::process::exit(1);
}

/// Sorts `explain` rows by ascending priority `F_i`.
///
/// `total_cmp`, not `partial_cmp().unwrap()`: `F_i` is a sum of graph and
/// temporal terms that can degenerate to NaN (e.g. `inf - inf` when an
/// observable has no positions), and a diagnostic subcommand must render
/// such a unit — ordered after every finite priority — rather than panic.
fn sort_explanations(explanations: &mut [anduril::Explanation]) {
    explanations.sort_by(|a, b| a.f_i.total_cmp(&b.f_i));
}

/// Resolves a `<case>` argument or exits nonzero with a clear message.
fn resolve_case(arg: Option<&String>) -> FailureCase {
    let Some(id) = arg else { usage() };
    case_by_id(id).unwrap_or_else(|| {
        eprintln!("anduril: no case matches `{id}` (run `anduril list`)");
        std::process::exit(2);
    })
}

/// Per-case static-analysis report data for `anduril analyze`.
struct AnalyzeRow {
    id: &'static str,
    ticket: &'static str,
    system: &'static str,
    sites_total: usize,
    sites_reachable: usize,
    sites_bounded: usize,
    sites_inferred: usize,
    units: usize,
    nodes: usize,
    edges: usize,
    /// Fraction of the a-priori `(site, occurrence, exception)` plan space
    /// the static occurrence bounds prove infeasible.
    pruned_ratio: f64,
    /// `(site id, desc, lo, hi)` static occurrence interval per candidate site.
    site_bounds: Vec<(u32, String, u64, Option<u64>)>,
    /// Whether the ground-truth root-cause site is statically dead (`hi == 0`)
    /// — always `false` if the bounds are sound.
    gt_dead: bool,
    /// `(template text, min distance over inferred sites)` per observable.
    observables: Vec<(String, Option<u32>)>,
    timings: anduril::causal::BuildTimings,
    lints: Vec<String>,
}

fn analyze_case(case: &anduril::failures::FailureCase) -> AnalyzeRow {
    let failure_log = case
        .failure_log()
        .unwrap_or_else(|e| fail(format!("{}: failure log: {e}", case.id)));
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
        .unwrap_or_else(|e| fail(format!("{}: context preparation: {e}", case.id)));
    let program = &ctx.scenario.program;
    let observables = ctx
        .observables
        .iter()
        .enumerate()
        .map(|(k, o)| {
            let text = program.templates[o.template.index()].text.clone();
            let min = ctx.distances[k].values().min().copied();
            (text, min)
        })
        .collect();
    let site_bounds: Vec<(u32, String, u64, Option<u64>)> = ctx
        .candidate_sites
        .iter()
        .map(|&sid| {
            let b = ctx.site_bound(sid);
            (sid.0, program.sites[sid.index()].desc.clone(), b.lo, b.hi)
        })
        .collect();
    let sites_bounded = site_bounds
        .iter()
        .filter(|(_, _, _, hi)| *hi != Some(0))
        .count();
    let gt_dead = case
        .root_site()
        .map(|sid| ctx.site_bound(sid).is_dead())
        .unwrap_or(true);
    AnalyzeRow {
        id: case.id,
        ticket: case.ticket,
        system: case.system,
        sites_total: program.sites.len(),
        sites_reachable: ctx.candidate_sites.len(),
        sites_bounded,
        sites_inferred: ctx.graph.sources().len(),
        units: ctx.units.len(),
        nodes: ctx.graph.node_count(),
        edges: ctx.graph.edge_count(),
        pruned_ratio: ctx.pruned_plan_ratio(),
        site_bounds,
        gt_dead,
        observables,
        timings: ctx.timings,
        lints: program
            .lints_with_bounds(&ctx.bounds.site_his())
            .iter()
            .map(|w| w.to_string())
            .collect(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn analyze_json(rows: &[AnalyzeRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"ticket\": \"{}\", \"system\": \"{}\", \
             \"sites_total\": {}, \"sites_reachable\": {}, \"sites_bounded\": {}, \
             \"sites_inferred\": {}, \
             \"units\": {}, \"nodes\": {}, \"edges\": {}, \
             \"pruned_plan_ratio\": {:.4}, \"gt_dead\": {}, \
             \"timings_ns\": {{\"exception\": {}, \"slicing\": {}, \"chaining\": {}, \"total\": {}}}, \
             \"site_bounds\": [",
            json_escape(r.id),
            json_escape(r.ticket),
            json_escape(r.system),
            r.sites_total,
            r.sites_reachable,
            r.sites_bounded,
            r.sites_inferred,
            r.units,
            r.nodes,
            r.edges,
            r.pruned_ratio,
            r.gt_dead,
            r.timings.exception_ns,
            r.timings.slicing_ns,
            r.timings.chaining_ns,
            r.timings.total_ns,
        );
        for (j, (site, desc, lo, hi)) in r.site_bounds.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"site\": {site}, \"desc\": \"{}\", \"lo\": {lo}, \"hi\": {}}}",
                if j > 0 { ", " } else { "" },
                json_escape(desc),
                hi.map(|h| h.to_string()).unwrap_or_else(|| "null".into()),
            );
        }
        out.push_str("], \"observables\": [");
        for (j, (text, min)) in r.observables.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"template\": \"{}\", \"min_distance\": {}}}",
                if j > 0 { ", " } else { "" },
                json_escape(text),
                min.map(|d| d.to_string()).unwrap_or_else(|| "null".into()),
            );
        }
        out.push_str("], \"lints\": [");
        for (j, l) in r.lints.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\"",
                if j > 0 { ", " } else { "" },
                json_escape(l)
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `ev` kind of a parsed trace line (`"?"` when absent).
fn ev_kind(v: &Json) -> &str {
    v.get("ev").and_then(Json::as_str).unwrap_or("?")
}

fn junum(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn jstr<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key).and_then(Json::as_str).unwrap_or("-")
}

fn jbool(v: &Json, key: &str) -> Option<bool> {
    v.get(key).and_then(Json::as_bool)
}

fn fmt_opt_f(v: Option<f64>) -> String {
    match v {
        None => "-".into(),
        Some(x) if x.fract() == 0.0 && x.abs() < 1e15 => format!("{}", x as i64),
        Some(x) => format!("{x:.2}"),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the priority provenance object of a `decision` line as a
/// compact `site#N Exc[@occ]` label.
fn fmt_candidate(p: &Json) -> String {
    format!(
        "site#{} {}{}",
        junum(p, "site"),
        jstr(p, "exc"),
        p.get("occ")
            .and_then(Json::as_u64)
            .map(|o| format!("@{o}"))
            .unwrap_or_default()
    )
}

/// Per-round aggregate built from `round_start`/`decision`/`round_end`
/// lines for the `--summary` narrative table.
#[derive(Default)]
struct TraceRoundRow {
    seed: Option<u64>,
    window: Option<u64>,
    armed: Option<u64>,
    top: Option<String>,
    f_i: Option<f64>,
    k_star: Option<u64>,
    l: Option<u64>,
    i_k: Option<f64>,
    injected: Option<String>,
    oracle: Option<bool>,
    log_entries: Option<u64>,
    init_ns: u64,
    workload_ns: u64,
}

fn collect_rounds(events: &[(String, Json)]) -> std::collections::BTreeMap<u64, TraceRoundRow> {
    let mut rounds: std::collections::BTreeMap<u64, TraceRoundRow> =
        std::collections::BTreeMap::new();
    for (_, v) in events {
        let Some(r) = v.get("round").and_then(Json::as_u64) else {
            continue;
        };
        match ev_kind(v) {
            "round_start" => {
                rounds.entry(r).or_default().seed = v.get("seed").and_then(Json::as_u64);
            }
            "decision" => {
                let row = rounds.entry(r).or_default();
                row.window = v.get("window").and_then(Json::as_u64);
                row.armed = v.get("armed").and_then(Json::as_u64);
                row.init_ns = junum(v, "init_ns");
                if let Some(p @ Json::Obj(_)) = v.get("provenance") {
                    row.top = Some(fmt_candidate(p));
                    row.f_i = p.get("f").and_then(Json::as_f64);
                    row.k_star = p.get("k").and_then(Json::as_u64);
                    row.l = p.get("l").and_then(Json::as_u64);
                    row.i_k = p.get("ik").and_then(Json::as_f64);
                }
            }
            "round_end" => {
                let row = rounds.entry(r).or_default();
                row.oracle = jbool(v, "oracle");
                row.log_entries = v.get("log_entries").and_then(Json::as_u64);
                row.workload_ns = junum(v, "workload_ns");
                row.injected = Some(match v.get("injected") {
                    Some(i @ Json::Obj(_)) => {
                        format!(
                            "site#{}@{} {}",
                            junum(i, "site"),
                            junum(i, "occ"),
                            jstr(i, "exc")
                        )
                    }
                    _ => "-".to_string(),
                });
            }
            _ => {}
        }
    }
    rounds
}

/// Picks at most `head + tail` keys, marking an elision in the middle.
fn sample_keys(keys: &[u64], head: usize, tail: usize) -> (Vec<u64>, bool) {
    if keys.len() <= head + tail {
        (keys.to_vec(), false)
    } else {
        let mut out = keys[..head].to_vec();
        out.extend_from_slice(&keys[keys.len() - tail..]);
        (out, true)
    }
}

/// `anduril trace <file> --summary`: the human-readable search narrative.
fn render_trace_summary(path: &str, events: &[(String, Json)]) {
    let find = |kind: &str| events.iter().map(|(_, v)| v).find(|v| ev_kind(v) == kind);
    let find_last = |kind: &str| {
        events
            .iter()
            .map(|(_, v)| v)
            .rev()
            .find(|v| ev_kind(v) == kind)
    };

    println!("Search trace {path} ({} events)", events.len());
    if let Some(s) = find("explore_start") {
        println!(
            "strategy: {} (max {} rounds, base seed {})",
            jstr(s, "strategy"),
            junum(s, "max_rounds"),
            junum(s, "base_seed")
        );
    }
    if let Some(c) = find("context") {
        println!(
            "context: {} observables, {} candidate units; {}/{} sites reachable; \
             causal graph {}v/{}e",
            junum(c, "observables"),
            junum(c, "units"),
            junum(c, "sites_reachable"),
            junum(c, "sites_total"),
            junum(c, "graph_nodes"),
            junum(c, "graph_edges"),
        );
    }
    match find_last("explore_end") {
        Some(e) if jbool(e, "success") == Some(true) => println!(
            "outcome: reproduced in {} rounds (replay verified: {}, wall {})",
            junum(e, "rounds"),
            jbool(e, "replay_verified").unwrap_or(false),
            fmt_ns(junum(e, "wall_ns")),
        ),
        Some(e) => println!(
            "outcome: NOT reproduced within {} rounds (wall {})",
            junum(e, "rounds"),
            fmt_ns(junum(e, "wall_ns")),
        ),
        None => println!("outcome: trace ends mid-search (no explore_end event)"),
    }

    let phases: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "phase")
        .collect();
    let context_ns: u64 = phases
        .iter()
        .filter(|p| !jstr(p, "phase").starts_with("graph."))
        .map(|p| junum(p, "ns"))
        .sum();
    if !phases.is_empty() {
        println!("\nContext preparation");
        let mut t = anduril_bench::TextTable::new(&["Phase", "Items", "Time"]);
        for p in &phases {
            t.row(vec![
                jstr(p, "phase").to_string(),
                junum(p, "items").to_string(),
                fmt_ns(junum(p, "ns")),
            ]);
        }
        print!("{}", t.render());
    }

    let rounds = collect_rounds(events);
    let planning_ns: u64 = rounds.values().map(|r| r.init_ns).sum();
    let workload_ns: u64 = rounds.values().map(|r| r.workload_ns).sum();
    if !rounds.is_empty() {
        println!("\nSearch narrative (per-round decision, injection, verdict)");
        let mut t = anduril_bench::TextTable::new(&[
            "Round",
            "Seed",
            "Win",
            "Armed",
            "Top candidate",
            "F_i",
            "k*",
            "L",
            "I_k",
            "Injected",
            "Repro",
            "Log",
        ]);
        let keys: Vec<u64> = rounds.keys().copied().collect();
        let (shown, elided) = sample_keys(&keys, 12, 12);
        let mut prev: Option<u64> = None;
        for r in shown {
            if let Some(p) = prev {
                if r != p + 1 {
                    let mut gap = vec![String::new(); 12];
                    gap[0] = "...".into();
                    t.row(gap);
                }
            }
            prev = Some(r);
            let row = &rounds[&r];
            let opt_u = |x: Option<u64>| x.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            t.row(vec![
                r.to_string(),
                opt_u(row.seed),
                opt_u(row.window),
                opt_u(row.armed),
                row.top.clone().unwrap_or_else(|| "-".into()),
                fmt_opt_f(row.f_i),
                opt_u(row.k_star),
                opt_u(row.l),
                fmt_opt_f(row.i_k),
                row.injected.clone().unwrap_or_else(|| "-".into()),
                row.oracle
                    .map(|b| if b { "YES" } else { "no" }.to_string())
                    .unwrap_or_else(|| "-".into()),
                opt_u(row.log_entries),
            ]);
        }
        print!("{}", t.render());
        if elided {
            println!("(middle rounds elided; {} rounds total)", keys.len());
        }
    }

    let feedback: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "feedback")
        .collect();
    if !feedback.is_empty() {
        println!("\nObservable feedback (I_k evolution, Algorithm 2)");
        let mut t = anduril_bench::TextTable::new(&["Round", "Adjust", "Present", "I_k"]);
        let keys: Vec<u64> = (0..feedback.len() as u64).collect();
        let (shown, elided) = sample_keys(&keys, 6, 6);
        let mut prev: Option<u64> = None;
        for i in shown {
            if let Some(p) = prev {
                if i != p + 1 {
                    let mut gap = vec![String::new(); 4];
                    gap[0] = "...".into();
                    t.row(gap);
                }
            }
            prev = Some(i);
            let v = feedback[i as usize];
            let present = v
                .get("present")
                .and_then(Json::as_arr)
                .map(|xs| {
                    let body: Vec<String> = xs
                        .iter()
                        .filter_map(Json::as_u64)
                        .map(|x| x.to_string())
                        .collect();
                    format!("[{}]", body.join(","))
                })
                .unwrap_or_else(|| "-".into());
            let ik = v
                .get("ik")
                .and_then(Json::as_arr)
                .map(|xs| {
                    let body: Vec<String> = xs.iter().map(|x| fmt_opt_f(x.as_f64())).collect();
                    format!("[{}]", body.join(", "))
                })
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                junum(v, "round").to_string(),
                fmt_opt_f(v.get("adjust").and_then(Json::as_f64)),
                present,
                ik,
            ]);
        }
        print!("{}", t.render());
        if elided {
            println!("(middle adjustments elided; {} total)", feedback.len());
        }
    }

    println!("\nTiming");
    let n = rounds.len().max(1) as u64;
    println!("  context prep : {}", fmt_ns(context_ns));
    println!(
        "  planning     : {} total, {} / round",
        fmt_ns(planning_ns),
        fmt_ns(planning_ns / n)
    );
    println!(
        "  workload     : {} total, {} / round",
        fmt_ns(workload_ns),
        fmt_ns(workload_ns / n)
    );

    let epochs = events.iter().filter(|(_, v)| ev_kind(v) == "epoch").count();
    let specs: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "spec")
        .collect();
    if epochs > 0 || !specs.is_empty() {
        let hits = specs
            .iter()
            .filter(|v| jbool(v, "hit") == Some(true))
            .count();
        println!(
            "\nSpeculation: {} epochs, {} validated slots, {} hits ({:.0}% of parallel work reused)",
            epochs,
            specs.len(),
            hits,
            100.0 * hits as f64 / specs.len().max(1) as f64
        );
    }

    let notes: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "note")
        .collect();
    if !notes.is_empty() {
        let retry = notes
            .iter()
            .filter(|v| jstr(v, "note") == "retry_pass")
            .count();
        let exhausted = notes
            .iter()
            .filter(|v| jstr(v, "note") == "window_exhausted")
            .count();
        let grew: Vec<u64> = notes
            .iter()
            .filter(|v| jstr(v, "note") == "window_grew")
            .map(|v| junum(v, "window"))
            .collect();
        let retired = notes
            .iter()
            .filter(|v| jstr(v, "note") == "retired")
            .count();
        let bound_pruned: u64 = notes
            .iter()
            .filter(|v| jstr(v, "note") == "bound_pruned")
            .map(|v| junum(v, "count"))
            .sum();
        println!(
            "\nLifecycle: {} windows exhausted, {} retry passes, {} window growths{}, \
             {} candidates retired, {} plans bound-pruned",
            exhausted,
            retry,
            grew.len(),
            grew.iter()
                .max()
                .map(|w| format!(" (max window {w})"))
                .unwrap_or_default(),
            retired,
            bound_pruned
        );
    }

    let promos: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "promoted")
        .collect();
    if !promos.is_empty() {
        println!(
            "\nAdaptive promotions ({}; `--promotions` for detail)",
            promos.len()
        );
        for p in &promos {
            println!(
                "  round {} pass {}: k = {} \"{}\" from {} (L {} -> {} at site#{})",
                junum(p, "round"),
                junum(p, "pass"),
                junum(p, "k"),
                jstr(p, "template"),
                jstr(p, "node_desc"),
                junum(p, "l_old"),
                junum(p, "l_new"),
                junum(p, "site"),
            );
        }
    }

    if let Some(s) = find_last("snapshot_stats") {
        println!(
            "\nSnapshot cache: {} hits, {} misses, {} ticks resumed, {} snapshots stored",
            junum(s, "hits"),
            junum(s, "misses"),
            junum(s, "resumed"),
            junum(s, "stored"),
        );
    }

    if let Some(p) = find_last("provenance") {
        println!("\nProvenance chain");
        println!(
            "  round {} (seed {}): injected {} at `{}` occurrence {}",
            junum(p, "round"),
            junum(p, "seed"),
            jstr(p, "exc"),
            jstr(p, "desc"),
            junum(p, "occ")
        );
        println!(
            "  prioritized by observable k* = {} \"{}\"",
            junum(p, "k"),
            jstr(p, "observable")
        );
        println!(
            "  L = {}, I_k = {}, F_i = {}, T = {}",
            junum(p, "l"),
            fmt_opt_f(p.get("ik").and_then(Json::as_f64)),
            fmt_opt_f(p.get("f").and_then(Json::as_f64)),
            fmt_opt_f(p.get("t").and_then(Json::as_f64)),
        );
    }
}

/// `anduril trace <file> --round N`: every event of one round, rendered.
fn render_trace_round(events: &[(String, Json)], n: u64) {
    let mut found = false;
    for (_, v) in events {
        if v.get("round").and_then(Json::as_u64) != Some(n) {
            continue;
        }
        found = true;
        match ev_kind(v) {
            "round_start" => println!("round {n} starts (seed {})", junum(v, "seed")),
            "decision" => {
                let prov = match v.get("provenance") {
                    Some(p @ Json::Obj(_)) => format!(
                        "; top {} — F_i = {} via k* = {} (L = {}, I_k = {}), T = {}",
                        fmt_candidate(p),
                        fmt_opt_f(p.get("f").and_then(Json::as_f64)),
                        junum(p, "k"),
                        junum(p, "l"),
                        fmt_opt_f(p.get("ik").and_then(Json::as_f64)),
                        fmt_opt_f(p.get("t").and_then(Json::as_f64)),
                    ),
                    _ => String::new(),
                };
                println!(
                    "  decision: window {}, {} armed{prov} [planned in {}]",
                    junum(v, "window"),
                    junum(v, "armed"),
                    fmt_ns(junum(v, "init_ns"))
                );
            }
            "note" => match jstr(v, "note") {
                "retry_pass" => println!("  note: retry pass {} begins", junum(v, "pass")),
                "window_exhausted" => println!(
                    "  note: window of {} exhausted in pass {}",
                    junum(v, "window"),
                    junum(v, "pass")
                ),
                "window_grew" => println!("  note: window grew to {}", junum(v, "window")),
                "retired" => println!(
                    "  note: retired site#{} {}",
                    junum(v, "site"),
                    jstr(v, "exc")
                ),
                "bound_pruned" => println!(
                    "  note: {} plans pruned by static occurrence bounds",
                    junum(v, "count")
                ),
                other => println!("  note: {other}"),
            },
            "promoted" => println!(
                "  promoted: k = {} \"{}\" from node #{} ({}) — L {} -> {} at site#{} \
                 [stall in pass {}]",
                junum(v, "k"),
                jstr(v, "template"),
                junum(v, "node"),
                jstr(v, "node_desc"),
                junum(v, "l_old"),
                junum(v, "l_new"),
                junum(v, "site"),
                junum(v, "pass")
            ),
            "spec" => println!(
                "  speculation: epoch {} slot {} — {}",
                junum(v, "epoch"),
                junum(v, "slot"),
                if jbool(v, "hit") == Some(true) {
                    "HIT (precomputed run reused)"
                } else {
                    "miss (re-run inline)"
                }
            ),
            "round_end" => {
                let inj = match v.get("injected") {
                    Some(i @ Json::Obj(_)) => format!(
                        "injected site#{} occ {} {}",
                        junum(i, "site"),
                        junum(i, "occ"),
                        jstr(i, "exc")
                    ),
                    _ => "no injection".to_string(),
                };
                println!(
                    "  end: {inj}; failure reproduced = {}; {} ticks, {} steps, {} log \
                     entries, {} injection requests [workload {}]",
                    jbool(v, "oracle").unwrap_or(false),
                    junum(v, "ticks"),
                    junum(v, "steps"),
                    junum(v, "log_entries"),
                    junum(v, "injection_requests"),
                    fmt_ns(junum(v, "workload_ns"))
                );
            }
            "feedback" => {
                let present = v
                    .get("present")
                    .and_then(Json::as_arr)
                    .map(|xs| {
                        let body: Vec<String> = xs
                            .iter()
                            .filter_map(Json::as_u64)
                            .map(|x| x.to_string())
                            .collect();
                        body.join(", ")
                    })
                    .unwrap_or_default();
                let ik = v
                    .get("ik")
                    .and_then(Json::as_arr)
                    .map(|xs| {
                        let body: Vec<String> = xs.iter().map(|x| fmt_opt_f(x.as_f64())).collect();
                        body.join(", ")
                    })
                    .unwrap_or_default();
                println!(
                    "  feedback: adjust {} on present observables [{present}]; I_k now [{ik}]",
                    fmt_opt_f(v.get("adjust").and_then(Json::as_f64))
                );
            }
            "provenance" => println!(
                "  provenance: {} at `{}` occurrence {} — observable k* = {} \"{}\", \
                 L = {}, I_k = {}, F_i = {}",
                jstr(v, "exc"),
                jstr(v, "desc"),
                junum(v, "occ"),
                junum(v, "k"),
                jstr(v, "observable"),
                junum(v, "l"),
                fmt_opt_f(v.get("ik").and_then(Json::as_f64)),
                fmt_opt_f(v.get("f").and_then(Json::as_f64))
            ),
            _ => {}
        }
    }
    if !found {
        fail(format!("no events for round {n} in the trace"));
    }
}

/// `anduril trace <file> --promotions`: every adaptive observable
/// promotion with its full provenance.
fn render_trace_promotions(events: &[(String, Json)]) {
    let promos: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "promoted")
        .collect();
    if promos.is_empty() {
        println!("no observable promotions in the trace (run with --adaptive on)");
        return;
    }
    println!("Adaptive observable promotions ({})", promos.len());
    let mut t = anduril_bench::TextTable::new(&[
        "Round",
        "Pass",
        "k",
        "Template",
        "Source node",
        "Site",
        "L_new",
        "L_old",
        "Delta",
        "Units",
    ]);
    for p in &promos {
        t.row(vec![
            junum(p, "round").to_string(),
            junum(p, "pass").to_string(),
            junum(p, "k").to_string(),
            format!("\"{}\"", jstr(p, "template")),
            format!("#{} {}", junum(p, "node"), jstr(p, "node_desc")),
            format!("site#{}", junum(p, "site")),
            junum(p, "l_new").to_string(),
            junum(p, "l_old").to_string(),
            p.get("delta")
                .and_then(Json::as_f64)
                .map(|d| format!("{}", d as i64))
                .unwrap_or_else(|| "-".into()),
            format!("+{}", junum(p, "units_added")),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(promotion at round R reshapes priorities from round R+1 on; \
         Delta = L_old - L_new at the focus site; Units = fault units the \
         promotion's scoped causal build newly connected)"
    );
}

/// `anduril trace <file> --json`: the aggregate summary as one JSON
/// document (raw event objects embedded verbatim where useful).
fn trace_report_json(events: &[(String, Json)]) -> String {
    use std::fmt::Write as _;
    let find_raw = |kind: &str| {
        events
            .iter()
            .find(|(_, v)| ev_kind(v) == kind)
            .map(|(raw, _)| raw.trim().to_string())
            .unwrap_or_else(|| "null".into())
    };
    let rounds = collect_rounds(events);
    let planning_ns: u64 = rounds.values().map(|r| r.init_ns).sum();
    let workload_ns: u64 = rounds.values().map(|r| r.workload_ns).sum();
    let epochs = events.iter().filter(|(_, v)| ev_kind(v) == "epoch").count();
    let specs: Vec<&Json> = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "spec")
        .collect();
    let hits = specs
        .iter()
        .filter(|v| jbool(v, "hit") == Some(true))
        .count();
    let note_count = |name: &str| {
        events
            .iter()
            .filter(|(_, v)| ev_kind(v) == "note" && jstr(v, "note") == name)
            .count()
    };
    let phases: Vec<String> = events
        .iter()
        .filter(|(_, v)| ev_kind(v) == "phase")
        .map(|(raw, _)| raw.trim().to_string())
        .collect();

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"events\": {},", events.len());
    let _ = writeln!(out, "  \"explore_start\": {},", find_raw("explore_start"));
    let _ = writeln!(out, "  \"context\": {},", find_raw("context"));
    let _ = writeln!(out, "  \"phases\": [{}],", phases.join(", "));
    let _ = writeln!(out, "  \"rounds\": {},", rounds.len());
    let _ = writeln!(out, "  \"planning_ns_total\": {planning_ns},");
    let _ = writeln!(out, "  \"workload_ns_total\": {workload_ns},");
    let _ = writeln!(
        out,
        "  \"speculation\": {{\"epochs\": {epochs}, \"slots\": {}, \"hits\": {hits}}},",
        specs.len()
    );
    let bound_pruned: u64 = events
        .iter()
        .map(|(_, v)| v)
        .filter(|v| ev_kind(v) == "note" && jstr(v, "note") == "bound_pruned")
        .map(|v| junum(v, "count"))
        .sum();
    let _ = writeln!(
        out,
        "  \"notes\": {{\"retry_passes\": {}, \"windows_exhausted\": {}, \"window_growths\": {}, \"retired\": {}, \"bound_pruned_plans\": {bound_pruned}}},",
        note_count("retry_pass"),
        note_count("window_exhausted"),
        note_count("window_grew"),
        note_count("retired")
    );
    let promotions: Vec<String> = events
        .iter()
        .filter(|(_, v)| ev_kind(v) == "promoted")
        .map(|(raw, _)| raw.trim().to_string())
        .collect();
    let _ = writeln!(out, "  \"promotions\": [{}],", promotions.join(", "));
    let _ = writeln!(out, "  \"snapshot_stats\": {},", find_raw("snapshot_stats"));
    let _ = writeln!(out, "  \"provenance\": {},", find_raw("provenance"));
    let _ = writeln!(out, "  \"explore_end\": {}", find_raw("explore_end"));
    out.push_str("}\n");
    out
}

fn feedback_config_by_name(name: &str) -> Option<FeedbackConfig> {
    Some(match name {
        "full" => FeedbackConfig::full(),
        "exhaustive" => FeedbackConfig::exhaustive(),
        "site-distance" => FeedbackConfig::site_distance(),
        "site-distance-limit3" => FeedbackConfig::site_distance_limited(),
        "site-feedback" => FeedbackConfig::site_feedback(),
        "multiply" => FeedbackConfig::multiply(),
        "sum-aggregate" => FeedbackConfig::sum_aggregate(),
        "order-distance" => FeedbackConfig::order_distance(),
        "global-diff" => FeedbackConfig::global_diff(),
        _ => return None,
    })
}

fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    if let Some(cfg) = feedback_config_by_name(name) {
        return Some(Box::new(FeedbackStrategy::new(cfg)));
    }
    Some(match name {
        "fate" => Box::new(Fate::new()),
        "crashtuner" => Box::new(CrashTuner::crashes()),
        "crashtuner-meta-exc" => Box::new(CrashTuner::meta_exceptions()),
        "stacktrace" => Box::new(StacktraceInjector::new()),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:4} {:10} {:10} description", "id", "ticket", "system");
            for c in all_cases() {
                println!(
                    "{:4} {:10} {:10} {}",
                    c.id, c.ticket, c.system, c.description
                );
            }
        }
        Some("show") => {
            let case = resolve_case(args.get(1));
            println!("{} ({}) on {}", case.ticket, case.id, case.system);
            println!("  {}", case.description);
            println!("  root cause : {} ({})", case.root_site_desc, case.root_exc);
            match case.ground_truth() {
                Ok(gt) => println!(
                    "  ground truth: occurrence {} under seed {}",
                    gt.occurrence, gt.seed
                ),
                Err(e) => println!("  ground truth: UNRESOLVABLE ({e})"),
            }
            for d in &case.deeper_causes {
                println!("  deeper cause: {} ({}) — {}", d.site_desc, d.exc, d.note);
            }
        }
        Some("log") => {
            let case = resolve_case(args.get(1));
            match case.failure_log() {
                Ok(log) => print!("{log}"),
                Err(e) => fail(format!("{}: failure log: {e}", case.id)),
            }
        }
        Some("analyze") => {
            let mut selector = "all".to_string();
            let mut json_path: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--json" => {
                        json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    s if i == 1 => {
                        selector = s.to_string();
                        i += 1;
                    }
                    _ => usage(),
                }
            }
            let cases: Vec<_> = all_cases()
                .into_iter()
                .filter(|c| {
                    selector.eq_ignore_ascii_case("all")
                        || c.id.eq_ignore_ascii_case(&selector)
                        || c.system.eq_ignore_ascii_case(&selector)
                })
                .collect();
            if cases.is_empty() {
                eprintln!("no case or system matches `{selector}`");
                std::process::exit(2);
            }
            let rows: Vec<AnalyzeRow> = cases.iter().map(analyze_case).collect();

            // With `--json -` the machine-readable document owns stdout, so
            // the human-readable report moves to stderr and stays pipeable.
            let json_stdout = json_path.as_deref() == Some("-");
            let mut report = String::new();
            use std::fmt::Write as _;

            writeln!(
                report,
                "Static analysis report (fault-site reduction and causal-graph shape)\n"
            )
            .unwrap_or_else(|e| fail(format!("analyze: cannot format report: {e}")));
            let mut t = anduril_bench::TextTable::new(&[
                "Case", "Ticket", "System", "Sites", "Reach", "Bound", "Inferred", "Units",
                "Nodes", "Edges", "Pruned%", "Obs", "MinDist", "Exc us", "Slice us", "Chain us",
                "Total us",
            ]);
            let mut last_system = "";
            for r in &rows {
                let mindist = r
                    .observables
                    .iter()
                    .map(|(_, m)| m.map(|d| d.to_string()).unwrap_or_else(|| "-".into()))
                    .collect::<Vec<_>>()
                    .join("/");
                t.row(vec![
                    r.id.to_string(),
                    r.ticket.to_string(),
                    if r.system == last_system {
                        String::new()
                    } else {
                        r.system.to_string()
                    },
                    r.sites_total.to_string(),
                    r.sites_reachable.to_string(),
                    r.sites_bounded.to_string(),
                    r.sites_inferred.to_string(),
                    r.units.to_string(),
                    r.nodes.to_string(),
                    r.edges.to_string(),
                    format!("{:.1}", 100.0 * r.pruned_ratio),
                    r.observables.len().to_string(),
                    mindist,
                    (r.timings.exception_ns / 1_000).to_string(),
                    (r.timings.slicing_ns / 1_000).to_string(),
                    (r.timings.chaining_ns / 1_000).to_string(),
                    (r.timings.total_ns / 1_000).to_string(),
                ]);
                last_system = r.system;
            }
            write!(report, "{}", t.render())
                .unwrap_or_else(|e| fail(format!("analyze: cannot format report: {e}")));
            writeln!(
                report,
                "\nSites = static fault sites; Reach = reachable from the workload \
                 roots; Bound = reachable sites the occurrence bounds leave alive \
                 (hi != 0); Inferred = causal-graph sources; Units = (site, exception) \
                 candidates after pruning; Pruned% = plan-space fraction the static \
                 occurrence bounds prove infeasible; MinDist = per-observable minimum \
                 source distance."
            )
            .unwrap_or_else(|e| fail(format!("analyze: cannot format report: {e}")));
            for r in &rows {
                for l in &r.lints {
                    writeln!(report, "lint [{}]: {}", r.id, l)
                        .unwrap_or_else(|e| fail(format!("analyze: cannot format report: {e}")));
                }
            }
            if json_stdout {
                eprint!("{report}");
            } else {
                print!("{report}");
            }

            let json = analyze_json(&rows);
            match json_path.as_deref() {
                Some("-") => print!("{json}"),
                Some(path) => {
                    std::fs::write(path, &json)
                        .unwrap_or_else(|e| fail(format!("cannot write `{path}`: {e}")));
                    println!("\nJSON written to {path}");
                }
                None => {
                    std::fs::create_dir_all("results")
                        .unwrap_or_else(|e| fail(format!("cannot create results dir: {e}")));
                    std::fs::write("results/analyze.json", &json)
                        .unwrap_or_else(|e| fail(format!("cannot write analyze.json: {e}")));
                    println!("\nJSON written to results/analyze.json");
                }
            }
        }
        Some("reproduce") => {
            let case = resolve_case(args.get(1));
            let mut strategy_name = "full".to_string();
            let mut max_rounds = 2_000usize;
            let mut emit_script: Option<String> = None;
            let mut threads = 1usize;
            let mut batch_size: Option<usize> = None;
            let mut trace_path: Option<String> = None;
            let mut engine: Option<anduril::sim::Engine> = None;
            let mut snapshot_capacity: Option<usize> = None;
            let mut adaptive = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--strategy" => {
                        strategy_name = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--max-rounds" => {
                        max_rounds = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--emit-script" => {
                        emit_script = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--threads" => {
                        threads = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--batch" => {
                        batch_size = Some(
                            args.get(i + 1)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    "--trace" => {
                        trace_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                        i += 2;
                    }
                    "--engine" => {
                        engine = Some(
                            args.get(i + 1)
                                .and_then(|s| anduril::sim::Engine::parse(s))
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    "--snapshots" => {
                        snapshot_capacity = Some(
                            args.get(i + 1)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or_else(|| usage()),
                        );
                        i += 2;
                    }
                    "--adaptive" => {
                        adaptive = match args.get(i + 1).map(String::as_str) {
                            Some("on") => true,
                            Some("off") => false,
                            _ => usage(),
                        };
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            let file_tracer = trace_path.as_deref().map(|path| {
                FileTracer::create(path)
                    .unwrap_or_else(|e| fail(format!("cannot create trace file `{path}`: {e}")))
            });
            let tracer: &dyn Tracer = match &file_tracer {
                Some(t) => t,
                None => &NoopTracer,
            };
            let gt = case
                .ground_truth()
                .unwrap_or_else(|e| fail(format!("{}: ground truth: {e}", case.id)));
            let failure_log = case
                .failure_log()
                .unwrap_or_else(|e| fail(format!("{}: failure log: {e}", case.id)));
            let mut scenario = case.scenario.clone();
            if let Some(e) = engine {
                scenario.config.engine = e;
            }
            let mut ctx = SearchContext::prepare_traced(scenario, &failure_log, 1_000, tracer)
                .unwrap_or_else(|e| fail(format!("{}: context preparation: {e}", case.id)));
            if let Some(cap) = snapshot_capacity {
                ctx.set_snapshot_capacity(cap);
            }
            eprintln!(
                "{}: {} observables, {} candidate units, causal graph {}v/{}e",
                case.id,
                ctx.observables.len(),
                ctx.units.len(),
                ctx.graph.node_count(),
                ctx.graph.edge_count()
            );
            let mut cfg = ExplorerConfig {
                max_rounds,
                ..ExplorerConfig::default()
            };
            cfg.adaptive.enabled = adaptive;
            let batched = threads > 1 || batch_size.is_some();
            let r = if batched {
                // The batched path speculates on a cloned strategy, so it
                // is limited to the (Clone) feedback-strategy family.
                let Some(fb_cfg) = feedback_config_by_name(&strategy_name) else {
                    eprintln!("--threads/--batch require a feedback-strategy variant");
                    std::process::exit(2);
                };
                let batch = BatchExplorerConfig {
                    batch_size: batch_size.unwrap_or_else(|| threads.max(2) * 2),
                    threads,
                };
                let mut strategy = FeedbackStrategy::new(fb_cfg);
                explore_batched_traced(
                    &ctx,
                    &case.oracle,
                    &mut strategy,
                    &cfg,
                    &batch,
                    Some(gt.site),
                    tracer,
                )
                .unwrap_or_else(|e| fail(format!("{}: exploration: {e}", case.id)))
            } else {
                let mut strategy = strategy_by_name(&strategy_name).unwrap_or_else(|| usage());
                explore_traced(
                    &ctx,
                    &case.oracle,
                    strategy.as_mut(),
                    &cfg,
                    Some(gt.site),
                    tracer,
                )
                .unwrap_or_else(|e| fail(format!("{}: exploration: {e}", case.id)))
            };
            if let Some(path) = &trace_path {
                tracer.flush();
                eprintln!("trace written to {path}");
            }
            if r.success {
                println!(
                    "reproduced in {} rounds ({} sim ticks, {:?} wall) with {}",
                    r.rounds, r.sim_time_total, r.wall, r.strategy
                );
                if let Some(s) = r.script {
                    println!(
                        "script: seed {} inject {} at `{}` occurrence {} (replay verified: {})",
                        s.seed, s.exc, s.desc, s.occurrence, r.replay_verified
                    );
                    if let Some(path) = emit_script {
                        std::fs::write(&path, s.to_text())
                            .unwrap_or_else(|e| fail(format!("cannot write `{path}`: {e}")));
                        println!("script written to {path}");
                    }
                }
            } else {
                println!(
                    "NOT reproduced within {} rounds with {}",
                    r.rounds, r.strategy
                );
                std::process::exit(1);
            }
        }
        Some("trace") => {
            let Some(path) = args.get(1) else { usage() };
            enum Mode {
                Summary,
                Round(u64),
                Promotions,
                Json,
            }
            let mut mode = Mode::Summary;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--summary" => {
                        mode = Mode::Summary;
                        i += 1;
                    }
                    "--round" => {
                        let n = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        mode = Mode::Round(n);
                        i += 2;
                    }
                    "--promotions" => {
                        mode = Mode::Promotions;
                        i += 1;
                    }
                    "--json" => {
                        mode = Mode::Json;
                        i += 1;
                    }
                    _ => usage(),
                }
            }
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read `{path}`: {e}")));
            let mut events: Vec<(String, Json)> = Vec::new();
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v = Json::parse(line)
                    .unwrap_or_else(|| fail(format!("{path}:{}: malformed JSON", lineno + 1)));
                if v.get("ev").and_then(Json::as_str).is_none() {
                    fail(format!(
                        "{path}:{}: not a trace event (no `ev` key)",
                        lineno + 1
                    ));
                }
                events.push((line.to_string(), v));
            }
            if events.is_empty() {
                fail(format!("`{path}` contains no trace events"));
            }
            match mode {
                Mode::Summary => render_trace_summary(path, &events),
                Mode::Round(n) => render_trace_round(&events, n),
                Mode::Promotions => render_trace_promotions(&events),
                Mode::Json => print!("{}", trace_report_json(&events)),
            }
        }
        Some("explain") => {
            let case = resolve_case(args.get(1));
            let failure_log = case
                .failure_log()
                .unwrap_or_else(|e| fail(format!("{}: failure log: {e}", case.id)));
            let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
                .unwrap_or_else(|e| fail(format!("{}: context preparation: {e}", case.id)));
            let mut s = FeedbackStrategy::new(FeedbackConfig::full());
            s.init(&ctx);
            let _ = s.plan_round(&ctx, 0);
            println!(
                "{}: initial priority breakdown (F_i = L + I via argmin observable k*)",
                case.id
            );
            println!(
                "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                "site", "F_i", "k*", "L", "I_k", "best occ", "T"
            );
            let mut explanations: Vec<_> = ctx
                .units
                .iter()
                .filter_map(|&u| s.explain(&ctx, u))
                .collect();
            sort_explanations(&mut explanations);
            for ex in explanations {
                let (occ, t) = ex
                    .best_instance
                    .map(|(o, t)| (format!("{o:?}"), format!("{t:.1}")))
                    .unwrap_or(("-".into(), "-".into()));
                println!(
                    "{:32} {:>5} {:>4} {:>5} {:>5} {:>10} {:>6}",
                    ctx.scenario.program.sites[ex.unit.site.index()].desc,
                    ex.f_i,
                    ex.k_star,
                    ex.l,
                    ex.i_k,
                    occ,
                    t
                );
            }
        }
        Some("generate") => {
            let mut seed = 1u64;
            let mut count = 10usize;
            let mut size = anduril::gen::SizeClass::Small;
            let mut multi_fault = false;
            let mut reproduce = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--seed" => {
                        seed = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--count" => {
                        count = args
                            .get(i + 1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--size" => {
                        size = args
                            .get(i + 1)
                            .and_then(|s| anduril::gen::SizeClass::parse(s))
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    "--multi-fault" => {
                        multi_fault = true;
                        i += 1;
                    }
                    "--reproduce" => {
                        reproduce = true;
                        i += 1;
                    }
                    _ => usage(),
                }
            }
            let cfg = anduril::gen::GenConfig {
                seed,
                size,
                multi_fault,
            };
            println!(
                "{:8} {:>5} {:>5} {:>5} {:>6} {:24} {:7} sound",
                "id", "nodes", "funcs", "sites", "stmts", "planted", "seed"
            );
            for idx in 0..count {
                let gc = anduril::gen::generate_one(&cfg, idx)
                    .unwrap_or_else(|e| fail(format!("case {idx}: {e}")));
                let planted = gc
                    .plant
                    .iter()
                    .map(|f| {
                        let desc = &gc.case.scenario.program.sites[f.site.index()].desc;
                        format!("{desc}@{}", f.occurrence)
                    })
                    .collect::<Vec<_>>()
                    .join(" + ");
                let sound = match anduril::gen::verify_sound(&gc) {
                    Ok(()) => "yes".to_string(),
                    Err(e) => format!("NO ({e})"),
                };
                println!(
                    "{:8} {:>5} {:>5} {:>5} {:>6} {:24} {:7} {}",
                    gc.case.id,
                    gc.nodes,
                    gc.funcs,
                    gc.sites,
                    gc.stmts,
                    planted,
                    gc.case.failure_seed,
                    sound
                );
                if reproduce && !gc.is_multi_fault() {
                    let ctx =
                        SearchContext::prepare(gc.case.scenario.clone(), &gc.failure_log, 1_000)
                            .unwrap_or_else(|e| fail(format!("{}: context: {e}", gc.case.id)));
                    let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
                    let repro = explore_traced(
                        &ctx,
                        &gc.case.oracle,
                        &mut strategy,
                        &ExplorerConfig::default(),
                        None,
                        &NoopTracer,
                    )
                    .unwrap_or_else(|e| fail(format!("{}: explore: {e}", gc.case.id)));
                    println!(
                        "         rediscovered = {} in {} rounds",
                        repro.success, repro.rounds
                    );
                }
            }
        }
        Some("replay") => {
            let case = resolve_case(args.get(1));
            let path = args.get(2).unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read `{path}`: {e}")));
            let script = anduril::ReproScript::parse(&text)
                .unwrap_or_else(|| fail(format!("malformed script `{path}`")));
            let r = script
                .replay(&case.scenario)
                .unwrap_or_else(|e| fail(format!("replay failed: {e}")));
            println!(
                "replayed {}: oracle satisfied = {}",
                case.id,
                case.oracle.check(&r)
            );
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::sort_explanations;
    use anduril::ir::{ExceptionType, SiteId};
    use anduril::{Explanation, FaultUnit};

    fn row(site: u32, f_i: f64) -> Explanation {
        Explanation {
            unit: FaultUnit {
                site: SiteId(site),
                exc: ExceptionType::Io,
            },
            f_i,
            k_star: 0,
            l: 0,
            i_k: 0.0,
            best_instance: None,
            rank: None,
        }
    }

    /// A NaN priority (possible when an observable's temporal term
    /// degenerates) must sort after every finite row, not panic the
    /// subcommand like the old `partial_cmp().unwrap()` did.
    #[test]
    fn explain_sort_survives_nan_priorities() {
        let mut rows = vec![
            row(0, 2.0),
            row(1, f64::NAN),
            row(2, 1.0),
            row(3, f64::INFINITY),
            row(4, -1.0),
        ];
        sort_explanations(&mut rows);
        let order: Vec<u32> = rows.iter().map(|e| e.unit.site.0).collect();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
        assert!(rows.last().unwrap().f_i.is_nan());
    }
}
