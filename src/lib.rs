//! ANDURIL in Rust: feedback-driven fault injection for reproducing
//! fault-induced failures in distributed systems.
//!
//! This workspace reproduces the SOSP '24 paper *Efficient Reproduction of
//! Fault-Induced Failures in Distributed Systems with Feedback-Driven
//! Fault Injection* end to end: the static causal analysis, the
//! feedback-driven Explorer, five mini target distributed systems, the 22
//! evaluated failures, the ablation variants, and the external
//! comparators. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the regenerated evaluation.
//!
//! This facade crate re-exports the public API of every component crate:
//!
//! - [`ir`] — the program IR targets are written in;
//! - [`sim`] — the deterministic simulator and fault-injection runtime;
//! - [`logdiff`] — log parsing, per-thread Myers diff, timeline alignment;
//! - [`causal`] — the static causal graph (Algorithm 1);
//! - the Explorer types at the crate root (re-exported from
//!   `anduril-core`);
//! - [`baselines`] — ablation variants and external comparators;
//! - [`targets`] — the five mini distributed systems;
//! - [`failures`] — the 22 failure cases.
//!
//! # Examples
//!
//! ```no_run
//! use anduril::{reproduce, ExplorerConfig};
//! use anduril::failures::case_by_id;
//!
//! let case = case_by_id("f17").expect("motivating example");
//! let failure_log = case.failure_log().expect("ground truth resolvable");
//! let (repro, _ctx) = reproduce(
//!     case.scenario.clone(),
//!     &failure_log,
//!     &case.oracle,
//!     &ExplorerConfig::default(),
//! )
//! .expect("exploration runs");
//! assert!(repro.success);
//! println!("reproduced in {} rounds: {:?}", repro.rounds, repro.script);
//! ```

pub use anduril_core::{
    explore, explore_batched, explore_batched_traced, explore_traced, reproduce, reproduce_batched,
    reproduce_traced, AdaptiveConfig, AdaptiveState, BatchExplorerConfig, Combine, Explanation,
    ExplorerConfig, FaultUnit, FeedbackConfig, FeedbackStrategy, FileTracer, Json, NoopTracer,
    ObservableInfo, Oracle, PlanProvenance, PromotedObservable, PromotedSet, ReproScript,
    Reproduction, RoundOutcome, RoundRecord, Scenario, SearchContext, SnapshotStats, Strategy,
    StrategyNote, TraceEvent, Tracer, VecTracer,
};

/// The structured search-trace layer (re-export of `anduril-core::trace`).
pub mod trace {
    pub use anduril_core::trace::*;
}

/// The program IR (re-export of `anduril-ir`).
pub mod ir {
    pub use anduril_ir::*;
}

/// The deterministic simulator (re-export of `anduril-sim`).
pub mod sim {
    pub use anduril_sim::*;
}

/// Log processing (re-export of `anduril-logdiff`).
pub mod logdiff {
    pub use anduril_logdiff::*;
}

/// Static causal analysis (re-export of `anduril-causal`).
pub mod causal {
    pub use anduril_causal::*;
}

/// Baseline strategies (re-export of `anduril-baselines`).
pub mod baselines {
    pub use anduril_baselines::*;
}

/// The five mini target systems (re-export of `anduril-targets`).
pub mod targets {
    pub use anduril_targets::*;
}

/// The 22 failure cases (re-export of `anduril-failures`).
pub mod failures {
    pub use anduril_failures::*;
}

/// The scenario generator with planted ground truth (re-export of
/// `anduril-gen`).
pub mod gen {
    pub use anduril_gen::*;
}
