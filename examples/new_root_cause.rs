//! Demonstrate the Table 6 finding: a reproduction can surface a *deeper*
//! root cause than the developers' diagnosis, behind the same oracle.
//!
//! Run with `cargo run --example new_root_cause`.

use anduril::failures::all_cases;
use anduril::sim::InjectionPlan;

fn main() {
    for case in all_cases() {
        if case.deeper_causes.is_empty() {
            continue;
        }
        println!("{} ({}) — {}", case.ticket, case.id, case.description);
        println!("  developer-diagnosed cause: {}", case.root_site_desc);
        for deeper in &case.deeper_causes {
            // Verify the deeper cause also satisfies the failure oracle.
            let site = case
                .scenario
                .program
                .sites
                .iter()
                .find(|s| s.desc == deeper.site_desc)
                .expect("deeper site exists")
                .id;
            let normal = case
                .scenario
                .run(case.failure_seed, InjectionPlan::none())
                .expect("normal run");
            let total = normal.site_occurrences[site.index()].max(1);
            let satisfying = (0..total).find(|&occ| {
                case.scenario
                    .run(
                        case.failure_seed,
                        InjectionPlan::exact(site, occ, deeper.exc),
                    )
                    .map(|r| r.injected.is_some() && case.oracle.check(&r))
                    .unwrap_or(false)
            });
            match satisfying {
                Some(occ) => println!(
                    "  deeper cause CONFIRMED   : {} {} at occurrence {occ} satisfies the same oracle\n    ({})",
                    deeper.exc, deeper.site_desc, deeper.note
                ),
                None => println!(
                    "  deeper cause NOT confirmed: {} {}",
                    deeper.exc, deeper.site_desc
                ),
            }
        }
        println!();
    }
}
