//! Inspect what ANDURIL's Instrumenter/Explorer front end derives from a
//! failure log: the relevant observables (§5.1), the causal graph sinks
//! and sources, and per-observable spatial distances (§5.2.2).
//!
//! Run with `cargo run --example inspect_observables [case-id]`.

use anduril::failures::case_by_id;
use anduril::SearchContext;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "f17".to_string());
    let case = case_by_id(&id).expect("known case id");
    println!("{} — {}\n", case.ticket, case.description);

    let failure_log = case.failure_log().expect("failure log");
    println!(
        "failure log: {} lines (first 5 shown)",
        failure_log.lines().count()
    );
    for line in failure_log.lines().take(5) {
        println!("  | {line}");
    }

    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let program = &ctx.scenario.program;

    println!("\nrelevant observables (failure-only messages):");
    for (k, obs) in ctx.observables.iter().enumerate() {
        println!(
            "  o{k}: {:60}  at failure-log positions {:?}",
            format!("{:?}", program.templates[obs.template.index()].text),
            obs.positions
        );
    }

    println!(
        "\ncausal graph: {} nodes, {} edges; {} source fault sites of {} total",
        ctx.graph.node_count(),
        ctx.graph.edge_count(),
        ctx.graph.sources().len(),
        program.sites.len()
    );

    println!("\nspatial distances L[site][observable] (rows = inferred sites):");
    print!("{:32}", "site");
    for k in 0..ctx.observables.len() {
        print!(" o{k:<3}");
    }
    println!(" instances");
    for site in ctx.graph.sources() {
        print!("{:32}", program.sites[site.index()].desc);
        for dists in &ctx.distances {
            match dists.get(&site) {
                Some(d) => print!(" {d:<4}"),
                None => print!(" -   "),
            }
        }
        println!(" {}", ctx.site_instances[site.index()].len());
    }

    let gt = case.ground_truth().expect("ground truth");
    println!(
        "\nground truth: {} at occurrence {} — {}",
        case.root_site_desc,
        gt.occurrence,
        if ctx.graph.sources().contains(&gt.site) {
            "INSIDE the pruned candidate set"
        } else {
            "OUTSIDE the candidate set (pruning too aggressive!)"
        }
    );
}
