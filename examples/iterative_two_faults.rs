//! The paper's iterative workflow for multi-fault failures (§3,
//! Assumptions): ANDURIL injects a single fault per round, so a failure
//! needing two causally independent faults cannot be reproduced in one
//! pass — but the near-miss logs guide the developer to bake one fault
//! into the workload and rerun.
//!
//! Run with `cargo run --example iterative_two_faults`.

use anduril::ir::builder::ProgramBuilder;
use anduril::ir::expr::build as e;
use anduril::ir::{ExceptionType, Level, Program, Value};
use anduril::sim::{InjectionPlan, NodeSpec, SimConfig, Topology};
use anduril::{reproduce, ExplorerConfig, Oracle, Scenario};

/// A service where corruption needs *two* faults: first the cache-sync
/// fault leaves the cache stale (handled, logged, survivable); then a
/// disk-write fault while the cache is stale corrupts state. `stale_cache`
/// pre-arms the first fault in the workload, the developer's "fix one
/// fault at a time into the workload" move.
fn build_service(stale_cache: bool) -> Program {
    let mut pb = ProgramBuilder::new("two-fault-service");
    let cache_stale = pb.global("cacheStale", Value::Bool(stale_cache));
    let corrupted = pb.global("stateCorrupted", Value::Bool(false));
    let writes = pb.global("writesApplied", Value::Int(0));
    let main = pb.declare("main", 0);
    pb.body(main, |b| {
        let i = b.local();
        b.assign(i, e::int(0));
        b.while_(e::lt(e::var(i), e::int(12)), |b| {
            // Fault A: the cache sync can fail; the service tolerates it
            // but remembers the staleness.
            b.try_catch(
                |b| {
                    b.external("cache.sync", &[ExceptionType::Io]);
                },
                ExceptionType::Io,
                |b| {
                    b.log_exc(
                        Level::Warn,
                        "cache sync failed, serving stale entries",
                        vec![],
                    );
                    b.set_global(cache_stale, e::bool_(true));
                },
            );
            // Fault B: a disk-write failure recovers cleanly — unless the
            // cache is stale, in which case the recovery path reads the
            // stale entry and corrupts the state (the two-fault bug).
            b.try_catch(
                |b| {
                    b.external("disk.write", &[ExceptionType::Io]);
                    b.set_global(writes, e::add(e::glob(writes), e::int(1)));
                },
                ExceptionType::Io,
                |b| {
                    b.if_else(
                        e::glob(cache_stale),
                        |b| {
                            b.set_global(corrupted, e::bool_(true));
                            b.log(
                                Level::Error,
                                "recovered from stale cache entry, state corrupted",
                                vec![],
                            );
                        },
                        |b| {
                            b.log(
                                Level::Warn,
                                "disk write failed, recovered from cache",
                                vec![],
                            );
                        },
                    );
                },
            );
            b.sleep(e::rand(3, 10));
            b.assign(i, e::add(e::var(i), e::int(1)));
        });
        b.log(Level::Info, "service run complete", vec![]);
    });
    pb.finish().expect("program builds")
}

fn scenario(stale_cache: bool) -> Scenario {
    let program = build_service(stale_cache);
    Scenario {
        name: "two-fault".into(),
        topology: Topology::new(vec![NodeSpec::new(
            "svc",
            program.func_named("main").unwrap(),
            vec![],
        )]),
        program,
        config: SimConfig::default(),
    }
}

fn main() {
    let oracle = Oracle::And(vec![
        Oracle::LogContains("state corrupted".into()),
        Oracle::GlobalEquals {
            node: "svc".into(),
            global: "stateCorrupted".into(),
            value: Value::Bool(true),
        },
    ]);

    // The production failure needed BOTH faults. Produce its log by
    // injecting fault A exactly once organically... here, by running the
    // two-fault plan (cache.sync occ 2, then disk.write occ 5) by hand.
    let base = scenario(false);
    let cache_site = base
        .program
        .sites
        .iter()
        .find(|s| s.desc == "cache.sync")
        .unwrap()
        .id;
    let disk_site = base
        .program
        .sites
        .iter()
        .find(|s| s.desc == "disk.write")
        .unwrap()
        .id;
    // A two-candidate plan fires only once (single-injection semantics),
    // so the genuine two-fault production run is emulated with the
    // pre-armed variant: fault A happened in production before the log
    // window we got.
    let production = scenario(true)
        .run(999, InjectionPlan::exact(disk_site, 5, ExceptionType::Io))
        .expect("production run");
    assert!(oracle.check(&production));
    let failure_log = production.log_text();

    // Pass 1: ANDURIL on the original scenario. A single injection cannot
    // produce both faults, so reproduction fails — but the near-miss logs
    // show the disk-write recovery path.
    println!("pass 1: original workload (single fault cannot corrupt)");
    let cfg = ExplorerConfig {
        max_rounds: 120,
        ..ExplorerConfig::default()
    };
    let (pass1, _) = reproduce(scenario(false), &failure_log, &oracle, &cfg).unwrap();
    println!(
        "  reproduced: {} after {} rounds (expected: false)",
        pass1.success, pass1.rounds
    );
    assert!(!pass1.success);

    // The developer inspects the round logs, sees `disk write failed,
    // recovered from cache` everywhere but never `stale`, and concludes a
    // *second* fault (the cache sync) must precede it. Following §3, they
    // fix fault A into the workload and rerun:
    println!("\npass 2: workload updated to enforce the first fault (stale cache)");
    let (pass2, _) = reproduce(scenario(true), &failure_log, &oracle, &cfg).unwrap();
    println!("  reproduced: {} in {} rounds", pass2.success, pass2.rounds);
    let script = pass2.script.expect("script");
    println!(
        "  root cause: inject {} at `{}` occurrence {}",
        script.exc, script.desc, script.occurrence
    );
    assert!(pass2.success);
    assert_eq!(script.site, disk_site);
    let _ = cache_site;
    println!("\nthe two-fault failure is reproduced iteratively, one fault per pass");
}
