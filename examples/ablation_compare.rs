//! Compare ANDURIL's full feedback against its ablation variants and the
//! external comparators on one failure (§8.3 / §8.4 in miniature).
//!
//! Run with `cargo run --example ablation_compare [case-id]`.

use anduril::baselines::{CrashTuner, Fate, StacktraceInjector};
use anduril::failures::case_by_id;
use anduril::{explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, SearchContext, Strategy};

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "f16".to_string());
    let case = case_by_id(&id).expect("known case id (f1..f22 or ticket)");
    println!("{} — {}\n", case.ticket, case.description);

    let gt = case.ground_truth().expect("ground truth");
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let cfg = ExplorerConfig {
        max_rounds: 400,
        ..ExplorerConfig::default()
    };

    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(FeedbackStrategy::new(FeedbackConfig::full())),
        Box::new(FeedbackStrategy::new(FeedbackConfig::exhaustive())),
        Box::new(FeedbackStrategy::new(FeedbackConfig::site_distance())),
        Box::new(FeedbackStrategy::new(
            FeedbackConfig::site_distance_limited(),
        )),
        Box::new(FeedbackStrategy::new(FeedbackConfig::site_feedback())),
        Box::new(FeedbackStrategy::new(FeedbackConfig::multiply())),
        Box::new(Fate::new()),
        Box::new(CrashTuner::crashes()),
        Box::new(CrashTuner::meta_exceptions()),
        Box::new(StacktraceInjector::new()),
    ];

    println!(
        "{:24} {:>8} {:>10} {:>10}",
        "strategy", "rounds", "sim-ticks", "wall-ms"
    );
    for strategy in &mut strategies {
        let r = explore(&ctx, &case.oracle, strategy.as_mut(), &cfg, Some(gt.site))
            .expect("exploration runs");
        if r.success {
            println!(
                "{:24} {:>8} {:>10} {:>10}",
                r.strategy,
                r.rounds,
                r.sim_time_total,
                r.wall.as_millis()
            );
        } else {
            println!("{:24} {:>8} {:>10} {:>10}", r.strategy, "-", "-", "-");
        }
    }
}
