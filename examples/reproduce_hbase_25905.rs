//! Reproduce the paper's motivating example: HBase-25905, where a
//! transient HDFS fault wedges the WAL at `waitForSafePoint` (§2.1).
//!
//! Run with `cargo run --example reproduce_hbase_25905`.

use anduril::failures::case_by_id;
use anduril::{explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, SearchContext};

fn main() {
    let case = case_by_id("HB-25905").expect("f17 is registered");
    println!("{} — {}", case.ticket, case.description);

    // The ground truth is known (the ticket is resolved); the failure log
    // is produced by replaying it, as the paper does for tickets that ship
    // without one.
    let gt = case.ground_truth().expect("ground truth resolvable");
    let failure_log = case.failure_log().expect("failure log renders");
    println!(
        "ground truth: {} at occurrence {} (seed {})",
        case.root_site_desc, gt.occurrence, gt.seed
    );
    println!("failure log: {} lines\n", failure_log.lines().count());

    // ANDURIL sees only the scenario, the failure log text, and the oracle.
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000)
        .expect("context prepares");
    println!(
        "observables={} causal graph: {} nodes / {} edges, {} candidate units",
        ctx.observables.len(),
        ctx.graph.node_count(),
        ctx.graph.edge_count(),
        ctx.units.len()
    );

    let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
    let repro = explore(
        &ctx,
        &case.oracle,
        &mut strategy,
        &ExplorerConfig::default(),
        Some(gt.site),
    )
    .expect("exploration runs");

    println!("\nper-round trace (rank of the true root-cause site — Figure 6):");
    for r in &repro.per_round {
        println!(
            "  round {:3}: window={:2} rank={:?} injected={:?} oracle={}",
            r.round + 1,
            r.window,
            r.gt_rank,
            r.injected
                .map(|(s, o, e)| format!("{}@{o} {}", s.0, e.name())),
            r.oracle_satisfied
        );
    }
    let script = repro.script.expect("reproduced");
    println!(
        "\nreproduced in {} rounds: inject {} at `{}` occurrence {} (seed {})",
        repro.rounds, script.exc, script.desc, script.occurrence, script.seed
    );
    assert_eq!(
        script.site, gt.site,
        "the root-cause site matches the ticket"
    );

    // The stale state the paper describes: the consumer is alive but the
    // roller is stuck at waitForSafePoint with un-acked appends pending.
    let replay = script.replay(&case.scenario).expect("replay runs");
    assert!(case.oracle.check(&replay));
    println!(
        "replay: roller stuck={} unackedAppends={:?}",
        replay.thread_blocked_in("LogRoller", "waitForSafePoint"),
        replay.global("rs1", "unackedAppends"),
    );
}
