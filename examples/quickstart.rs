//! Quickstart: build a tiny faulty service, seed a "production" failure,
//! and let ANDURIL find the root-cause fault and timing.
//!
//! Run with `cargo run --example quickstart`.

use anduril::ir::builder::ProgramBuilder;
use anduril::ir::expr::build as e;
use anduril::ir::{ExceptionType, Level, Value};
use anduril::sim::{InjectionPlan, NodeSpec, SimConfig, Topology};
use anduril::{reproduce, ExplorerConfig, Oracle, Scenario};

fn main() {
    // 1. A miniature service: a server appends client records to external
    //    storage; one append fault permanently wedges it.
    let mut pb = ProgramBuilder::new("quickstart");
    let broken = pb.global("broken", Value::Bool(false));
    let stored = pb.global("stored", Value::Int(0));
    let records = pb.chan("records");
    let server = pb.declare("server_main", 0);
    let client = pb.declare("client_main", 0);
    pb.body(server, |b| {
        let msg = b.local();
        b.log(Level::Info, "server ready", vec![]);
        b.loop_(|b| {
            b.try_catch(
                |b| {
                    b.recv(records, msg, Some(e::int(3_000)));
                },
                ExceptionType::Timeout,
                |b| {
                    b.break_();
                },
            );
            b.try_catch(
                |b| {
                    b.external("storage.append", &[ExceptionType::Io]);
                    b.set_global(stored, e::add(e::glob(stored), e::int(1)));
                },
                ExceptionType::Io,
                |b| {
                    b.log_exc(
                        Level::Error,
                        "storage append failed, wedging writes",
                        vec![],
                    );
                    b.set_global(broken, e::bool_(true));
                    b.break_();
                },
            );
        });
        b.log(Level::Info, "server stopped", vec![]);
    });
    pb.body(client, |b| {
        let i = b.local();
        b.assign(i, e::int(0));
        b.while_(e::lt(e::var(i), e::int(15)), |b| {
            b.send(e::str_("srv"), records, e::var(i));
            b.sleep(e::rand(5, 20));
            b.assign(i, e::add(e::var(i), e::int(1)));
        });
    });
    let program = pb.finish().expect("program builds");

    let scenario = Scenario {
        name: "quickstart".into(),
        topology: Topology::new(vec![
            NodeSpec::new("srv", program.func_named("server_main").unwrap(), vec![]),
            NodeSpec::new("cli", program.func_named("client_main").unwrap(), vec![]),
        ]),
        program,
        config: SimConfig::default(),
    };

    // 2. The failure symptom: the server wedged after storing exactly 7
    //    records. Produce the "production" failure log by injecting the
    //    (here known) root cause.
    let oracle = Oracle::And(vec![
        Oracle::LogContains("storage append failed".into()),
        Oracle::GlobalEquals {
            node: "srv".into(),
            global: "stored".into(),
            value: Value::Int(7),
        },
    ]);
    let root_site = scenario.program.sites[0].id;
    let production = scenario
        .run(999, InjectionPlan::exact(root_site, 7, ExceptionType::Io))
        .expect("production run");
    assert!(oracle.check(&production));
    let failure_log = production.log_text();
    println!("--- production failure log ---\n{failure_log}");

    // 3. Hand ANDURIL the scenario, the failure log, and the oracle; it
    //    searches the fault space for the root cause and timing.
    let (repro, ctx) = reproduce(scenario, &failure_log, &oracle, &ExplorerConfig::default())
        .expect("exploration runs");

    println!("--- reproduction ---");
    println!("relevant observables : {}", ctx.observables.len());
    println!("candidate fault units: {}", ctx.units.len());
    println!("reproduced           : {}", repro.success);
    println!("rounds               : {}", repro.rounds);
    let script = repro.script.expect("script on success");
    println!(
        "root cause           : inject {} at `{}` occurrence {}",
        script.exc, script.desc, script.occurrence
    );
    println!("replay verified      : {}", repro.replay_verified);
}
