//! Adaptive observable promotion's determinism contract: with adaptation
//! on, the sequential and batched (`--threads 4`) explorers emit
//! byte-identical stable trace streams — promotions included — and with
//! adaptation off (the default) the stream is byte-identical to a run
//! that has no adaptive layer in play at all.
//!
//! The stall-prone context is manufactured the same way the
//! `anduril-bench` adaptive ablation does: strip the nearest (strongest
//! guidance) observable's entries from the failure log before
//! preparation, simulating log rotation/rate limiting around the failure.

use anduril::failures::case_by_id;
use anduril::trace::{TraceEvent, VecTracer};
use anduril::{
    explore_batched_traced, explore_traced, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, Oracle, Scenario, SearchContext,
};

/// The degraded failure log of a case: every entry (line plus
/// continuation lines) of the prepared context's nearest observable
/// stripped.
fn degraded_inputs(id: &str) -> (Scenario, Oracle, String) {
    let case = case_by_id(id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let nearest = (0..ctx.observables.len())
        .filter_map(|k| ctx.distances[k].values().min().map(|&d| (d, k)))
        .min()
        .map(|(_, k)| k)
        .expect("at least one observable");
    let template = &ctx.scenario.program.templates[ctx.observables[nearest].template.index()];
    let mut degraded = String::new();
    let mut drop = false;
    for line in failure_log.lines() {
        let is_entry = line.len() > 9
            && line.as_bytes()[..8].iter().all(u8::is_ascii_digit)
            && line.as_bytes()[8] == b' ';
        if is_entry {
            drop = line
                .split_once(" - ")
                .map(|(_, body)| template.matches(body))
                .unwrap_or(false);
        }
        if !drop {
            degraded.push_str(line);
            degraded.push('\n');
        }
    }
    (case.scenario.clone(), case.oracle.clone(), degraded)
}

/// One traced exploration over a freshly prepared context (promotions
/// mutate the context, so sharing one across runs would leak state).
fn traced_run(
    scenario: &Scenario,
    oracle: &Oracle,
    log: &str,
    cfg: &ExplorerConfig,
    threads: Option<usize>,
) -> Vec<TraceEvent> {
    let ctx = SearchContext::prepare(scenario.clone(), log, 1_000).expect("context");
    let tracer = VecTracer::new();
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    match threads {
        None => {
            explore_traced(&ctx, oracle, &mut s, cfg, None, &tracer).expect("explore");
        }
        Some(threads) => {
            let batch = BatchExplorerConfig {
                batch_size: 8,
                threads,
            };
            explore_batched_traced(&ctx, oracle, &mut s, cfg, &batch, None, &tracer)
                .expect("explore_batched");
        }
    }
    tracer.take()
}

fn stable_lines(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| !e.is_batch_only())
        .map(TraceEvent::stable_json)
        .collect()
}

fn promotion_count(lines: &[String]) -> usize {
    lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"promoted\""))
        .count()
}

/// With adaptation on, a stall-prone degraded case promotes — and the
/// sequential and `threads = 4` batched streams stay byte-identical,
/// promotion events and all post-promotion planning included.
#[test]
fn adaptive_streams_sequential_equals_batched() {
    let (scenario, oracle, degraded) = degraded_inputs("f18");
    let mut cfg = ExplorerConfig {
        max_rounds: 300,
        verify_replay: false,
        ..ExplorerConfig::default()
    };
    cfg.adaptive.enabled = true;

    let seq = stable_lines(&traced_run(&scenario, &oracle, &degraded, &cfg, None));
    assert!(
        promotion_count(&seq) > 0,
        "f18-degraded: the adaptive run must actually promote"
    );
    let bat = stable_lines(&traced_run(&scenario, &oracle, &degraded, &cfg, Some(4)));
    assert_eq!(
        seq.len(),
        bat.len(),
        "f18-degraded: stream lengths differ (threads=4)"
    );
    for (i, (a, b)) in seq.iter().zip(&bat).enumerate() {
        assert_eq!(
            a, b,
            "f18-degraded: stream diverges at event {i} (threads=4)"
        );
    }
}

/// Adaptation rescues the degraded case the frozen observable set cannot
/// reproduce within the same round budget.
#[test]
fn adaptive_rescues_degraded_case() {
    let (scenario, oracle, degraded) = degraded_inputs("f18");
    let cfg = ExplorerConfig {
        max_rounds: 300,
        verify_replay: false,
        ..ExplorerConfig::default()
    };

    let fixed = traced_run(&scenario, &oracle, &degraded, &cfg, None);
    let fixed_success = fixed
        .iter()
        .any(|e| matches!(e, TraceEvent::RoundEnd { oracle: true, .. }));
    assert!(
        !fixed_success,
        "f18-degraded: the frozen set should not reproduce (else this test's premise is stale)"
    );

    let mut adaptive_cfg = cfg;
    adaptive_cfg.adaptive.enabled = true;
    let adaptive = traced_run(&scenario, &oracle, &degraded, &adaptive_cfg, None);
    assert!(
        adaptive
            .iter()
            .any(|e| matches!(e, TraceEvent::RoundEnd { oracle: true, .. }),),
        "f18-degraded: adaptation must rescue the search"
    );

    // The promoted observable grows the `I_k` vector: feedback events
    // after the promotion carry the longer vector.
    let mut promoted_at = None;
    for (i, e) in adaptive.iter().enumerate() {
        match e {
            TraceEvent::ObservablePromoted { k, .. } => {
                promoted_at = Some((i, *k));
            }
            TraceEvent::Feedback { i_k, .. } => {
                if let Some((at, k)) = promoted_at {
                    assert!(
                        i_k.len() > k,
                        "feedback after promotion (event {at}) must carry the grown I_k vector"
                    );
                }
            }
            _ => {}
        }
    }
    assert!(promoted_at.is_some(), "adaptive run must promote");
}

/// `adaptive.enabled = false` (the default) is inert: its tuning knobs
/// cannot influence the stream, no promotion events appear, and the
/// default-config stream is identical to one with wildly different
/// (disabled) adaptive settings.
#[test]
fn adaptive_off_is_byte_identical() {
    let (scenario, oracle, degraded) = degraded_inputs("f18");
    let base = ExplorerConfig {
        max_rounds: 100,
        verify_replay: false,
        ..ExplorerConfig::default()
    };
    let mut tweaked = base.clone();
    tweaked.adaptive.max_promotions = 999;
    tweaked.adaptive.per_stall = 7;
    tweaked.adaptive.focus_sites = 99;

    let a = stable_lines(&traced_run(&scenario, &oracle, &degraded, &base, None));
    let b = stable_lines(&traced_run(&scenario, &oracle, &degraded, &tweaked, None));
    assert_eq!(
        a, b,
        "disabled adaptive knobs must not influence the stream"
    );
    assert_eq!(promotion_count(&a), 0, "no promotions with adaptation off");
}
