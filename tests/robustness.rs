//! Robustness: reproduction must not depend on one magic seed or one exact
//! workload — the paper's inputs are a *production* log (arbitrary run)
//! and any workload that exercises the affected feature.

use anduril::failures::case_by_id;
use anduril::sim::InjectionPlan;
use anduril::{explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, SearchContext};

/// Reproduce a case whose "production" failure happened under a different
/// seed than the registered one.
fn reproduce_with_failure_seed(id: &str, failure_seed: u64) -> bool {
    let mut case = case_by_id(id).expect("case");
    case.failure_seed = failure_seed;
    // The ground truth scan may land on a different occurrence under the
    // new seed; some seeds may not reach the failure state at all (the
    // paper's probabilistic-reproduction caveat, §6). Skip those.
    let Ok(gt) = case.ground_truth() else {
        return true;
    };
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
    let r = explore(
        &ctx,
        &case.oracle,
        &mut strategy,
        &ExplorerConfig::default(),
        Some(gt.site),
    )
    .expect("explore");
    r.success
}

#[test]
fn reproduction_is_not_seed_specific() {
    for id in ["f3", "f8", "f17", "f22"] {
        for seed in [7_777u64, 31_337, 424_242] {
            assert!(
                reproduce_with_failure_seed(id, seed),
                "{id} not reproduced for failure seed {seed}"
            );
        }
    }
}

#[test]
fn normal_runs_vary_across_seeds_but_stay_healthy() {
    // The flexible window exists because runs are nondeterministic across
    // rounds; verify the premise: different seeds produce different logs,
    // none of which satisfy the oracle.
    for id in ["f1", "f16", "f21"] {
        let case = case_by_id(id).expect("case");
        let mut texts = std::collections::HashSet::new();
        for seed in 0..5u64 {
            let r = case.scenario.run(seed, InjectionPlan::none()).expect("run");
            assert!(!case.oracle.check(&r), "{id}: healthy run satisfied oracle");
            texts.insert(r.log_text());
        }
        assert!(
            texts.len() >= 3,
            "{id}: only {} distinct logs across 5 seeds",
            texts.len()
        );
    }
}

#[test]
fn instance_counts_shift_across_seeds() {
    // The premise of the occurrence-targeted window: the same site has a
    // similar-but-not-identical number of dynamic instances per run.
    let case = case_by_id("f17").expect("case");
    let site = case.root_site().expect("site");
    let mut counts = std::collections::BTreeSet::new();
    for seed in 0..6u64 {
        let r = case.scenario.run(seed, InjectionPlan::none()).expect("run");
        counts.insert(r.site_occurrences[site.index()]);
    }
    let min = *counts.iter().next().unwrap();
    let max = *counts.iter().last().unwrap();
    assert!(max > 0);
    assert!(
        max - min <= min,
        "instance counts should be in the same ballpark: {counts:?}"
    );
    assert!(counts.len() >= 2, "and not perfectly constant: {counts:?}");
}
