//! Cross-strategy comparisons (Table 2's shape): full feedback beats the
//! ablation variants and external comparators where the paper says it
//! should.

use anduril::baselines::{CrashTuner, Fate, StacktraceInjector};
use anduril::failures::{all_cases, case_by_id};
use anduril::{
    explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, Reproduction, SearchContext,
    Strategy,
};

fn run_case(id: &str, strategy: &mut dyn Strategy, max_rounds: usize) -> Reproduction {
    let case = case_by_id(id).expect("case exists");
    let failure_log = case.failure_log().expect("failure log");
    let gt = case.ground_truth().expect("ground truth");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let cfg = ExplorerConfig {
        max_rounds,
        ..ExplorerConfig::default()
    };
    explore(&ctx, &case.oracle, strategy, &cfg, Some(gt.site)).expect("runs")
}

#[test]
fn feedback_beats_exhaustive_in_aggregate() {
    // As in the paper's Table 2, individual cases can go either way; the
    // aggregate over the timing-sensitive cases must favour feedback.
    let mut full_total = 0usize;
    let mut ex_total = 0usize;
    for id in ["f1", "f16", "f17", "f20"] {
        let mut full = FeedbackStrategy::new(FeedbackConfig::full());
        let full_r = run_case(id, &mut full, 2_000);
        assert!(full_r.success, "{id} full");
        full_total += full_r.rounds;
        let mut ex = FeedbackStrategy::new(FeedbackConfig::exhaustive());
        let ex_r = run_case(id, &mut ex, 2_000);
        ex_total += if ex_r.success { ex_r.rounds } else { 2_000 };
    }
    assert!(
        full_total <= ex_total,
        "aggregate: full {full_total} > exhaustive {ex_total}"
    );
}

#[test]
fn ablation_variants_all_run_and_mostly_reproduce() {
    // On an easy case every variant should finish; this exercises each
    // configuration end to end.
    let configs = [
        FeedbackConfig::full(),
        FeedbackConfig::exhaustive(),
        FeedbackConfig::site_distance(),
        FeedbackConfig::site_distance_limited(),
        FeedbackConfig::site_feedback(),
        FeedbackConfig::multiply(),
    ];
    for cfg in configs {
        let name = cfg.name;
        let mut s = FeedbackStrategy::new(cfg);
        let r = run_case("f5", &mut s, 500);
        assert!(r.success, "{name} fails on the easy case f5");
    }
}

#[test]
fn stacktrace_injector_wins_when_root_cause_is_logged() {
    // f18's failure log contains the root-cause throwable with its stack:
    // the stacktrace-injector gets it almost immediately (the paper's
    // KA-12508 round-1 narrative).
    let mut st = StacktraceInjector::new();
    let r = run_case("f18", &mut st, 300);
    assert!(r.success);
    assert!(r.rounds <= 3, "took {} rounds", r.rounds);
}

#[test]
fn stacktrace_injector_fails_when_root_cause_is_not_logged() {
    // f13's procedure-store failure is logged *without* the throwable (as
    // real catch blocks often do), so the injector's only stacked targets
    // are noise sites — it cannot reproduce the failure.
    let mut st = StacktraceInjector::new();
    let r = run_case("f13", &mut st, 100);
    assert!(!r.success, "unexpectedly reproduced in {} rounds", r.rounds);
}

#[test]
fn fate_loses_in_aggregate() {
    let mut full_total = 0usize;
    let mut fate_total = 0usize;
    for id in ["f1", "f13", "f16", "f17"] {
        let mut full = FeedbackStrategy::new(FeedbackConfig::full());
        let full_r = run_case(id, &mut full, 1_000);
        assert!(full_r.success);
        full_total += full_r.rounds;
        let mut fate = Fate::new();
        let fate_r = run_case(id, &mut fate, 1_000);
        fate_total += if fate_r.success { fate_r.rounds } else { 1_000 };
    }
    assert!(
        full_total < fate_total,
        "aggregate: full {full_total} >= fate {fate_total}"
    );
}

#[test]
fn crashtuner_cannot_reproduce_exception_induced_failures() {
    // The faithful CrashTuner injects crashes only; our oracles demand
    // exception-specific behaviour, so it reproduces none of these —
    // the paper's qualitative point (4 of 22 at best).
    for id in ["f5", "f13", "f18"] {
        let mut ct = CrashTuner::crashes();
        let r = run_case(id, &mut ct, 300);
        assert!(!r.success, "{id}: crash injection satisfied the oracle");
    }
}

#[test]
fn crashtuner_meta_exception_adaptation_can_reproduce_meta_adjacent_cases() {
    // f16's root cause sits in the replication-transfer function, which
    // touches no meta global; but the adapted heuristic still covers cases
    // whose fault sites live near meta-info state. f10's registration path
    // runs in dn_main, which writes `liveDatanodes`... verify at least one
    // case is reachable by the adaptation.
    let mut any = false;
    for id in ["f10", "f16", "f1"] {
        let mut ct = CrashTuner::meta_exceptions();
        let r = run_case(id, &mut ct, 500);
        any |= r.success;
    }
    assert!(any, "the meta-exception adaptation reproduces something");
}

#[test]
fn sensitivity_settings_still_reproduce_most_cases() {
    // Table 3's shape: k and s variations change rounds but rarely break
    // reproduction. Spot-check the extremes on three cases.
    for id in ["f3", "f9", "f12"] {
        for (k, s) in [(1usize, 1.0f64), (3, 2.0), (10, 10.0)] {
            let mut strat = FeedbackStrategy::new(FeedbackConfig::full_with(k, s));
            let r = run_case(id, &mut strat, 1_000);
            assert!(r.success, "{id} with k={k}, s={s}");
        }
    }
}

#[test]
fn all_cases_have_unique_tickets() {
    let cases = all_cases();
    let mut tickets: Vec<_> = cases.iter().map(|c| c.ticket).collect();
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len(), 22);
}
