//! The headline result (Table 2, first column): ANDURIL reproduces all 22
//! real-world failures, identifying the root-cause fault and timing.

use anduril::failures::all_cases;
use anduril::{explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, SearchContext};

#[test]
fn every_case_is_fault_induced() {
    // The defining property: the workload alone never satisfies the
    // oracle — the failure needs its fault.
    for case in all_cases() {
        assert!(
            case.fault_free_run_is_healthy().expect("run ok"),
            "{}: oracle satisfied without any fault",
            case.id
        );
    }
}

#[test]
fn every_case_has_a_resolvable_ground_truth() {
    for case in all_cases() {
        let gt = case
            .ground_truth()
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        assert_eq!(gt.exc, case.root_exc, "{}", case.id);
    }
}

#[test]
fn full_feedback_reproduces_all_22_failures() {
    let mut reproduced = 0;
    let mut total_rounds = Vec::new();
    for case in all_cases() {
        let failure_log = case.failure_log().expect("failure log");
        let gt = case.ground_truth().expect("ground truth");
        let ctx =
            SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
        let mut strategy = FeedbackStrategy::new(FeedbackConfig::full());
        let repro = explore(
            &ctx,
            &case.oracle,
            &mut strategy,
            &ExplorerConfig::default(),
            Some(gt.site),
        )
        .expect("exploration runs");
        assert!(
            repro.success,
            "{} ({}) not reproduced within {} rounds",
            case.id, case.ticket, repro.rounds
        );
        assert!(
            repro.replay_verified,
            "{}: reproduction script must replay deterministically",
            case.id
        );
        let script = repro.script.expect("script");
        // The injected exception type is one the reproduced site declares
        // (for multi-exception sites like f5's image save, either declared
        // type satisfies the oracle — the handler is a multi-catch).
        let site_info = &case.scenario.program.sites[script.site.index()];
        assert!(
            site_info.exceptions.contains(&script.exc),
            "{}: {} not declared by {}",
            case.id,
            script.exc,
            site_info.desc
        );
        reproduced += 1;
        total_rounds.push(repro.rounds);
    }
    assert_eq!(reproduced, 22, "all 22 failures reproduce");
    total_rounds.sort_unstable();
    let median = total_rounds[total_rounds.len() / 2];
    // The paper's median is 11 rounds on systems ~1000x larger; ours must
    // at least stay in the same efficient regime.
    assert!(
        median <= 30,
        "median rounds {median} too high: {total_rounds:?}"
    );
}

#[test]
fn case_registry_is_consistent() {
    let cases = all_cases();
    assert_eq!(cases.len(), 22);
    for (i, c) in cases.iter().enumerate() {
        assert_eq!(c.id, format!("f{}", i + 1), "cases are ordered");
        assert!(!c.description.is_empty());
        // The declared root site exists in the program.
        assert!(
            c.root_site().is_ok(),
            "{}: root site {} missing",
            c.id,
            c.root_site_desc
        );
    }
    // Exactly five deeper-cause findings (Table 6).
    let deeper: usize = cases.iter().map(|c| c.deeper_causes.len()).sum();
    assert_eq!(deeper, 5);
    // All five systems are covered.
    let systems: std::collections::BTreeSet<_> = cases.iter().map(|c| c.system).collect();
    assert_eq!(systems.len(), 5);
}
