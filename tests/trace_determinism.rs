//! The trace stream's determinism contract: for the same case and seed,
//! the sequential and batched explorers emit byte-identical event streams
//! once (a) volatile host-time fields are dropped (`stable_json`) and
//! (b) the batch engine's epoch/slot tags are filtered (`is_batch_only`).

use anduril::failures::case_by_id;
use anduril::trace::{Json, TraceEvent, VecTracer};
use anduril::{
    explore_batched_traced, explore_traced, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, SearchContext,
};

/// Runs one traced exploration (sequential when `threads` is `None`) and
/// returns the raw event stream, including context-preparation events.
fn traced_run(id: &str, threads: Option<usize>) -> Vec<TraceEvent> {
    let case = case_by_id(id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let gt = case.ground_truth().expect("ground truth");
    let tracer = VecTracer::new();
    let ctx = SearchContext::prepare_traced(case.scenario.clone(), &failure_log, 1_000, &tracer)
        .expect("context");
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    let cfg = ExplorerConfig::default();
    match threads {
        None => {
            explore_traced(&ctx, &case.oracle, &mut s, &cfg, Some(gt.site), &tracer)
                .expect("explore");
        }
        Some(threads) => {
            let batch = BatchExplorerConfig {
                batch_size: 8,
                threads,
            };
            explore_batched_traced(
                &ctx,
                &case.oracle,
                &mut s,
                &cfg,
                &batch,
                Some(gt.site),
                &tracer,
            )
            .expect("explore_batched");
        }
    }
    tracer.take()
}

/// The deterministic serialization of a stream: batch-only events dropped,
/// volatile fields omitted.
fn stable_lines(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .filter(|e| !e.is_batch_only())
        .map(TraceEvent::stable_json)
        .collect()
}

/// Three cases spanning short and long searches: the batched stream equals
/// the sequential stream byte for byte, modulo epoch/slot tags.
#[test]
fn batched_stream_equals_sequential_stream() {
    for id in ["f1", "f3", "f17"] {
        let seq = stable_lines(&traced_run(id, None));
        assert!(!seq.is_empty(), "{id}: sequential stream is non-empty");
        let bat = stable_lines(&traced_run(id, Some(4)));
        assert_eq!(
            seq.len(),
            bat.len(),
            "{id}: stream lengths differ (threads=4)"
        );
        for (i, (a, b)) in seq.iter().zip(&bat).enumerate() {
            assert_eq!(a, b, "{id}: stream diverges at event {i} (threads=4)");
        }
    }
}

/// Re-running the same sequential search twice gives the same stream —
/// the stream itself is a pure function of (case, seed).
#[test]
fn sequential_stream_is_reproducible() {
    let a = stable_lines(&traced_run("f3", None));
    let b = stable_lines(&traced_run("f3", None));
    assert_eq!(a, b, "f3: two identical runs must trace identically");
}

/// Every line of the volatile serialization — what `FileTracer` writes —
/// parses back through the bundled JSON reader with an `ev` kind.
#[test]
fn every_emitted_line_is_valid_jsonl() {
    for (id, threads) in [("f3", None), ("f3", Some(4))] {
        for ev in traced_run(id, threads) {
            for line in [ev.to_json(), ev.stable_json()] {
                let v =
                    Json::parse(&line).unwrap_or_else(|| panic!("{id}: unparseable line: {line}"));
                assert!(
                    v.get("ev").and_then(Json::as_str).is_some(),
                    "{id}: line without `ev`: {line}"
                );
            }
        }
    }
}
