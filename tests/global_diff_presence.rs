//! Pins the §5.1.1 ablation split: the per-thread diff (the paper's
//! method) and the global diff legitimately disagree when a failure-only
//! message shows up on a *different thread* than the failure log recorded.
//! The global diff happily matches it anywhere; the per-thread diff keeps
//! the failure entry missing because its `(node, thread)` group never saw
//! it — exactly the interleaving confusion Algorithm 2's per-thread
//! matching exists to avoid.

use anduril::failures::case_by_id;
use anduril::SearchContext;

/// Builds a round log containing one observable's body — verbatim at
/// first, then re-homed onto a fabricated thread.
#[test]
fn global_and_per_thread_presence_differ_across_threads() {
    let case = case_by_id("f1").expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    assert!(!ctx.observables.is_empty(), "f1 has observables");

    // The first position of the first observable, as the failure log
    // recorded it.
    let k = 0usize;
    let pos = ctx.observables[k].positions[0];
    let entry = &ctx.failure[pos];

    let same_thread = format!(
        "00000001 [{}:{}] {} - {}\n",
        entry.node,
        entry.thread,
        entry.level.name(),
        entry.body
    );
    let other_thread = format!(
        "00000001 [{}:thread-from-nowhere] {} - {}\n",
        entry.node,
        entry.level.name(),
        entry.body
    );

    // Sanity: on the recorded thread, both diffs agree the observable is
    // present.
    let per_thread = ctx.present_observables_with(&same_thread, false);
    let global = ctx.present_observables_with(&same_thread, true);
    assert!(
        per_thread.contains(&k),
        "same thread: per-thread diff sees observable {k}"
    );
    assert!(
        global.contains(&k),
        "same thread: global diff sees observable {k}"
    );

    // Re-homed: the global diff still matches the body; the per-thread
    // diff must not — the `(node, thread)` group of the failure entry
    // never emitted it.
    let per_thread = ctx.present_observables_with(&other_thread, false);
    let global = ctx.present_observables_with(&other_thread, true);
    assert!(
        global.contains(&k),
        "other thread: global diff matches the body anywhere"
    );
    assert!(
        !per_thread.contains(&k),
        "other thread: per-thread diff must keep the failure entry missing"
    );
}
