//! Structural invariants of the trace event stream, checked on a real
//! search via [`VecTracer`]: phase ordering, round bracketing, feedback
//! accounting, and terminal events.

use anduril::failures::case_by_id;
use anduril::trace::{TraceEvent, VecTracer};
use anduril::{
    explore_traced, ExplorerConfig, FeedbackConfig, FeedbackStrategy, Reproduction, SearchContext,
};

/// Runs a full traced search and returns the stream, the outcome, and the
/// strategy's final observable priorities.
fn traced_search(id: &str) -> (Vec<TraceEvent>, Reproduction, Vec<f64>) {
    let case = case_by_id(id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let gt = case.ground_truth().expect("ground truth");
    let tracer = VecTracer::new();
    let ctx = SearchContext::prepare_traced(case.scenario.clone(), &failure_log, 1_000, &tracer)
        .expect("context");
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    let r = explore_traced(
        &ctx,
        &case.oracle,
        &mut s,
        &ExplorerConfig::default(),
        Some(gt.site),
        &tracer,
    )
    .expect("explore");
    (tracer.take(), r, s.observable_priorities().to_vec())
}

/// All context-preparation events precede exploration; the stream opens
/// with the normal run's phase and closes with `ExploreEnd`.
#[test]
fn context_events_precede_exploration_and_stream_terminates() {
    for id in ["f3", "f17"] {
        let (events, _, _) = traced_search(id);
        let first_round = events
            .iter()
            .position(|e| matches!(e, TraceEvent::RoundStart { .. }))
            .unwrap_or_else(|| panic!("{id}: no RoundStart event"));
        for (i, e) in events.iter().enumerate() {
            if matches!(
                e,
                TraceEvent::ContextPhase { .. } | TraceEvent::ContextReady { .. }
            ) {
                assert!(
                    i < first_round,
                    "{id}: context event at {i} after round 0 (at {first_round})"
                );
            }
        }
        assert!(
            matches!(events.first(), Some(TraceEvent::ContextPhase { phase, .. }) if *phase == "sim.compile"),
            "{id}: stream must open with the bytecode-compile phase"
        );
        assert!(
            matches!(events.get(1), Some(TraceEvent::ContextPhase { phase, .. }) if *phase == "normal_run"),
            "{id}: the normal-run phase must follow compilation"
        );
        assert!(
            matches!(events.last(), Some(TraceEvent::ExploreEnd { .. })),
            "{id}: stream must close with ExploreEnd"
        );
        // Exactly one ExploreStart, between context prep and round 0.
        let starts: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, TraceEvent::ExploreStart { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(starts.len(), 1, "{id}: exactly one ExploreStart");
        assert!(starts[0] < first_round, "{id}: ExploreStart before round 0");
    }
}

/// Rounds are properly bracketed: each `RoundStart` is followed by its
/// `Decision` and exactly one matching `RoundEnd`, and round numbers are
/// consecutive from 0.
#[test]
fn every_round_start_has_a_matching_end() {
    for id in ["f3", "f17"] {
        let (events, repro, _) = traced_search(id);
        let mut open: Option<usize> = None;
        let mut next_round = 0usize;
        let mut decided = false;
        for e in &events {
            match e {
                TraceEvent::RoundStart { round, .. } => {
                    assert_eq!(
                        open, None,
                        "{id}: round {round} starts inside another round"
                    );
                    assert_eq!(*round, next_round, "{id}: rounds must be consecutive");
                    open = Some(*round);
                    decided = false;
                }
                TraceEvent::Decision { round, .. } => {
                    assert_eq!(open, Some(*round), "{id}: decision outside its round");
                    decided = true;
                }
                TraceEvent::RoundEnd { round, .. } => {
                    assert_eq!(open, Some(*round), "{id}: round {round} ends unopened");
                    assert!(decided, "{id}: round {round} ended without a decision");
                    open = None;
                    next_round = round + 1;
                }
                _ => {}
            }
        }
        assert_eq!(open, None, "{id}: a round was left open");
        assert_eq!(
            next_round, repro.rounds,
            "{id}: bracketed rounds == rounds run"
        );
    }
}

/// Feedback accounting: replaying each `Feedback` event's `adjust` over
/// its `present` set reconstructs both the event's own `I_k` snapshot and
/// the strategy's final priorities.
#[test]
fn feedback_deltas_sum_to_final_priorities() {
    for id in ["f3", "f17"] {
        let (events, repro, finals) = traced_search(id);
        let mut i_k = vec![0.0f64; finals.len()];
        let mut saw_feedback = false;
        for e in &events {
            if let TraceEvent::Feedback {
                present,
                adjust,
                i_k: snapshot,
                ..
            } = e
            {
                saw_feedback = true;
                for &k in present {
                    i_k[k] += *adjust;
                }
                assert_eq!(
                    &i_k, snapshot,
                    "{id}: reconstructed I_k diverges from the event snapshot"
                );
            }
        }
        // A search that succeeds in round 0 (f3) never applies feedback;
        // any longer full-feedback search must.
        assert_eq!(
            saw_feedback,
            repro.rounds > 1,
            "{id}: Feedback events iff unsuccessful rounds existed"
        );
        assert_eq!(
            i_k, finals,
            "{id}: summed deltas must equal the strategy's final I_k"
        );
    }
}

/// A successful search ends with a `ProvenanceChain` naming the same
/// injection as the emitted script, and `ExploreEnd` agrees with the
/// returned `Reproduction`.
#[test]
fn success_emits_a_provenance_chain() {
    let (events, repro, _) = traced_search("f17");
    assert!(repro.success, "f17 must reproduce");
    let script = repro.script.as_ref().expect("script on success");
    let chain = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::ProvenanceChain {
                seed,
                site,
                occurrence,
                exc,
                ..
            } => Some((*seed, *site, *occurrence, *exc)),
            _ => None,
        })
        .expect("ProvenanceChain on success");
    assert_eq!(chain.0, script.seed, "provenance seed == script seed");
    assert_eq!(chain.1, script.site, "provenance site == script site");
    assert_eq!(
        chain.2, script.occurrence,
        "provenance occurrence == script occurrence"
    );
    assert_eq!(
        chain.3, script.exc,
        "provenance exception == script exception"
    );
    match events.last() {
        Some(TraceEvent::ExploreEnd {
            success,
            rounds,
            replay_verified,
            ..
        }) => {
            assert!(*success);
            assert_eq!(*rounds, repro.rounds);
            assert_eq!(*replay_verified, repro.replay_verified);
        }
        other => panic!("stream must end with ExploreEnd, got {other:?}"),
    }
}
