//! The interned structured diff path is a pure representation change: an
//! exploration run with `text_diff_baseline` forced (render every round
//! log to text, re-parse it, diff `(level, body)` string keys) must be
//! byte-identical — same round count, same per-round decisions, same
//! emitted script text — to the same exploration through the interned
//! `u32`-token fast path.

use anduril::failures::case_by_id;
use anduril::{
    explore, ExplorerConfig, FeedbackConfig, FeedbackStrategy, Reproduction, SearchContext,
};

fn run(id: &str, text_diff_baseline: bool) -> Reproduction {
    let case = case_by_id(id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let gt = case.ground_truth().expect("ground truth");
    let mut ctx =
        SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    ctx.text_diff_baseline = text_diff_baseline;
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    explore(
        &ctx,
        &case.oracle,
        &mut s,
        &ExplorerConfig::default(),
        Some(gt.site),
    )
    .expect("explore")
}

fn assert_identical(id: &str, text: &Reproduction, fast: &Reproduction) {
    assert_eq!(text.success, fast.success, "{id}: success");
    assert_eq!(text.rounds, fast.rounds, "{id}: rounds");
    assert_eq!(text.script, fast.script, "{id}: script");
    assert_eq!(text.replay_verified, fast.replay_verified, "{id}: replay");
    assert_eq!(
        text.injection_requests, fast.injection_requests,
        "{id}: injection requests"
    );
    assert_eq!(text.sim_time_total, fast.sim_time_total, "{id}: sim time");
    assert_eq!(text.per_round.len(), fast.per_round.len(), "{id}: records");
    for (a, b) in text.per_round.iter().zip(&fast.per_round) {
        assert_eq!(a.round, b.round, "{id}: round index");
        assert_eq!(a.window, b.window, "{id}: window @{}", a.round);
        assert_eq!(a.armed, b.armed, "{id}: armed @{}", a.round);
        assert_eq!(a.injected, b.injected, "{id}: injected @{}", a.round);
        assert_eq!(a.k_star, b.k_star, "{id}: k_star @{}", a.round);
        assert_eq!(
            a.oracle_satisfied, b.oracle_satisfied,
            "{id}: oracle @{}",
            a.round
        );
    }
    // The user-facing artifact, byte for byte.
    assert_eq!(
        text.script.as_ref().map(|s| s.to_text()),
        fast.script.as_ref().map(|s| s.to_text()),
        "{id}: script text"
    );
}

/// Three cases spanning short and long searches: f3 (short), f9, and f17
/// (the motivating example, with a retry pass).
#[test]
fn fast_path_matches_text_baseline() {
    for id in ["f3", "f9", "f17"] {
        let text = run(id, true);
        let fast = run(id, false);
        assert!(text.success, "{id}: baseline run must reproduce");
        assert_identical(id, &text, &fast);
    }
}
