//! The batched explorer's contract: for any `batch_size`/`threads`, the
//! exploration is byte-identical to the sequential Explorer — same script,
//! same round count, same per-round decisions. Speculation may only change
//! how fast the answer arrives, never the answer.

use anduril::failures::case_by_id;
use anduril::{
    explore, explore_batched, BatchExplorerConfig, ExplorerConfig, FeedbackConfig,
    FeedbackStrategy, Reproduction, SearchContext,
};

fn sequential(id: &str) -> (Reproduction, SearchContext) {
    let case = case_by_id(id).expect("case");
    let failure_log = case.failure_log().expect("failure log");
    let gt = case.ground_truth().expect("ground truth");
    let ctx = SearchContext::prepare(case.scenario.clone(), &failure_log, 1_000).expect("context");
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    let r = explore(
        &ctx,
        &case.oracle,
        &mut s,
        &ExplorerConfig::default(),
        Some(gt.site),
    )
    .expect("explore");
    (r, ctx)
}

fn batched(id: &str, ctx: &SearchContext, batch: &BatchExplorerConfig) -> Reproduction {
    let case = case_by_id(id).expect("case");
    let gt = case.ground_truth().expect("ground truth");
    let mut s = FeedbackStrategy::new(FeedbackConfig::full());
    explore_batched(
        ctx,
        &case.oracle,
        &mut s,
        &ExplorerConfig::default(),
        batch,
        Some(gt.site),
    )
    .expect("explore_batched")
}

fn assert_identical(id: &str, threads: usize, seq: &Reproduction, bat: &Reproduction) {
    let tag = format!("{id} (threads={threads})");
    assert_eq!(seq.success, bat.success, "{tag}: success");
    assert_eq!(seq.rounds, bat.rounds, "{tag}: rounds");
    assert_eq!(seq.script, bat.script, "{tag}: script");
    assert_eq!(seq.replay_verified, bat.replay_verified, "{tag}: replay");
    assert_eq!(
        seq.injection_requests, bat.injection_requests,
        "{tag}: injection requests"
    );
    assert_eq!(seq.sim_time_total, bat.sim_time_total, "{tag}: sim time");
    assert_eq!(seq.per_round.len(), bat.per_round.len(), "{tag}: records");
    for (a, b) in seq.per_round.iter().zip(&bat.per_round) {
        // Everything except host-time measurements must match exactly.
        assert_eq!(a.round, b.round, "{tag}: round index");
        assert_eq!(a.window, b.window, "{tag}: window @{}", a.round);
        assert_eq!(a.armed, b.armed, "{tag}: armed @{}", a.round);
        assert_eq!(a.injected, b.injected, "{tag}: injected @{}", a.round);
        assert_eq!(a.k_star, b.k_star, "{tag}: k_star @{}", a.round);
        assert_eq!(a.gt_rank, b.gt_rank, "{tag}: gt rank @{}", a.round);
        assert_eq!(a.sim_time, b.sim_time, "{tag}: sim time @{}", a.round);
        assert_eq!(
            a.oracle_satisfied, b.oracle_satisfied,
            "{tag}: oracle @{}",
            a.round
        );
    }
    // The emitted script text — the user-facing artifact — is the same
    // byte for byte.
    assert_eq!(
        seq.script.as_ref().map(|s| s.to_text()),
        bat.script.as_ref().map(|s| s.to_text()),
        "{tag}: script text"
    );
}

/// Two failure cases: f3 (a short search) and f17 (the motivating example,
/// a long search with a retry pass), each against threads 1 and 4.
#[test]
fn batched_matches_sequential() {
    for id in ["f3", "f17"] {
        let (seq, ctx) = sequential(id);
        assert!(seq.success, "{id}: sequential baseline must reproduce");
        for threads in [1usize, 4] {
            let batch = BatchExplorerConfig {
                batch_size: 8,
                threads,
            };
            let bat = batched(id, &ctx, &batch);
            assert_identical(id, threads, &seq, &bat);
        }
    }
}

/// Odd batch geometries (batch of 1, batch larger than the whole search)
/// cannot change the outcome either.
#[test]
fn batch_geometry_is_irrelevant() {
    let (seq, ctx) = sequential("f3");
    for (batch_size, threads) in [(1usize, 4usize), (64, 2), (3, 8)] {
        let bat = batched(
            "f3",
            &ctx,
            &BatchExplorerConfig {
                batch_size,
                threads,
            },
        );
        assert_identical("f3", threads, &seq, &bat);
    }
}
